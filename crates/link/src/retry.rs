//! Transmit-side retransmission controller.
//!
//! Sits between the sync→async interface and the serializer. The
//! interface FIFO's head register already holds the in-flight word
//! until the word handshake completes, so it *is* the replay
//! register: a retry is simply re-raising the serializer's request
//! while the upstream request (and therefore the word) is held.
//!
//! Failure detection is two-pronged:
//!
//! * **NACK** — the receive-side checker consumed a corrupted word
//!   and pulsed the dedicated backward wire. The core's word
//!   acknowledge arrives *before* the verdict is knowable (for I2 it
//!   completes once the last slice enters the pipeline, while the
//!   word is still in flight; for I3 the per-word acknowledge is
//!   launched at burst arrival, before the check), so the controller
//!   holds the upstream completion through a matched-delay *verdict
//!   guard* sized to cover the worst-case flight-plus-check-plus-NACK
//!   return. A NACK inside the window classifies the word as failed
//!   while it is still pinned at the FIFO head; silence past the
//!   guard is a good completion.
//! * **Timeout** — a ring oscillator gated by the waiting condition
//!   clocks an asynchronous ripple counter; a thermometer-coded
//!   failure count selects which counter tap arms the timeout, so
//!   each consecutive retry doubles the horizon (exponential backoff
//!   from a counter-gated delay chain). This catches words that never
//!   complete at all — a wedged handshake, a glitch-eaten strobe.
//!
//! Escalation is bounded: after `resync_retries` consecutive failures
//! the controller executes a watchdog-triggered resync — a four-phase
//! return-to-zero drain of every David-cell stage along the link (the
//! serializer core, wire buffers, deserializer and checker see their
//! reset held low for the drain pulse) — and for the word-level link
//! I3 it also degrades permanently to per-transfer-ack pacing. After
//! `max_retries` consecutive failures it gives up on the word:
//! completes the upstream handshake and lets the scoreboard account
//! the loss — delivery stays at-most-once-correct, never silently
//! corrupt.

use sal_cells::CircuitBuilder;
use sal_des::{SignalId, Value};

use crate::LinkConfig;

/// Observability taps into the recovery layer, exposed through
/// [`LinkHandles`](crate::LinkHandles) so the measurement layer can
/// count episodes without knowing the netlist internals.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySignals {
    /// The NACK as heard at the transmitter (one pulse per corrupted
    /// word the checker consumed).
    pub nack: SignalId,
    /// The backoff flag: high for the duration of each failure
    /// episode (one rising edge per retransmission attempt).
    pub retry: SignalId,
    /// The timeout detector output (one rising edge per timed-out
    /// attempt).
    pub timeout: SignalId,
    /// The resync drain pulse (one rising edge per watchdog-triggered
    /// link drain).
    pub resync: SignalId,
    /// I3 only: the sticky degrade flag — once high, the link paces
    /// requests per-transfer-ack style for the rest of its life.
    pub degraded: Option<SignalId>,
    /// The give-up flag: high while a word is being abandoned after
    /// `max_retries` consecutive failures.
    pub gave_up: SignalId,
}

/// Ports of the retransmission controller.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPorts {
    /// Request toward the serializer (the upstream request, gated off
    /// during backoff and give-up).
    pub req_down: SignalId,
    /// Word acknowledge toward the sync→async interface (a *good*
    /// completion, or a give-up).
    pub ack_up: SignalId,
    /// The resync drain pulse — the assembly ANDs its inverse into
    /// the link core's reset.
    pub resync: SignalId,
    /// Observability taps (see [`RecoverySignals`]).
    pub signals: RecoverySignals,
}

/// Buffer count of the verdict guard: the delay between the core's
/// word acknowledge and the upstream completion, matched to cover the
/// residual pipeline flight, the receive-side check and the NACK's
/// return trip (measured ≈ 530 ps at nominal delays; 48 buffers give
/// a better-than-2× margin, and both sides of the race are plain gate
/// chains so uniform derating preserves the margin).
const VERDICT_BUFS: usize = 48;

/// Buffer count of the resync drain pulse: long enough for the
/// gated-off reset to propagate through every David-cell stage along
/// the link and back.
const DRAIN_BUFS: usize = 16;

/// Extra hold after the drain pulse clears before a retry may launch
/// (lets the released resets settle).
const DRAIN_TAIL_BUFS: usize = 8;

/// Buffer count of the degraded-mode pacing chain: a conservative
/// per-transfer-style spacing between word requests (covers a full
/// wire round trip at the default geometry).
const PACE_BUFS: usize = 24;

/// Builds the retransmission controller in scope `name`.
///
/// `req_up` is the interface's word request; `ack_core` the
/// serializer's word acknowledge; `nack_heard` the (pre-declared)
/// NACK as it arrives on the backward wire; `rstn` the *global* reset
/// — the controller must survive the resyncs it triggers. `degrade`
/// selects the I3 behaviour (sticky degrade to paced requests after
/// the first resync).
pub(crate) fn build_retry(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    req_up: SignalId,
    ack_core: SignalId,
    nack_heard: SignalId,
    rstn: SignalId,
    degrade: bool,
) -> RetryPorts {
    b.push_scope(name);
    let one = b.tie("one", Value::one(1));
    // Pre-declared flags: the logic computing their set/clear inputs
    // reads them back.
    let req_down = b.input("req_down", 1);
    let ack_up = b.input("ack_up", 1);
    let backoff = b.input("backoff", 1);
    let resync = b.input("resync", 1);

    let nack_n = b.inv("nack_n", nack_heard);
    let ack_n = b.inv("ack_n", ack_core);
    let nreq_up = b.inv("nreq_up", req_up);
    let nbackoff = b.inv("nbackoff", backoff);

    // Good/failed classification. The word stays pinned at the FIFO
    // head (request held, no upstream ack) until the verdict guard
    // expires, so a NACK arriving while the request is still up always
    // refers to the held word and can trigger a clean retransmission.
    //
    // `ack_ok` demands the *live* acknowledge alongside its guarded
    // copy: on a good word the four-phase core holds `ack_core` high
    // until the upstream request withdraws, so both terms overlap once
    // the guard delay expires; on a failure the backoff's
    // return-to-zero has already dropped the acknowledge by the time
    // the stale pulse drains out of the guard chain, and a delay-line
    // pulse still in flight is invisible to any latch-based interlock
    // — the live term is the only gate that reliably kills it.
    let ack_guard = b.buf_chain("ack_guard", ack_core, VERDICT_BUFS);
    let ack_ok0 = b.and3("ack_ok0", ack_guard, ack_core, nack_n);
    let ack_ok = b.and2("ack_ok", ack_ok0, nbackoff);
    let fail_nack = b.and2("fail_nack", nack_heard, req_down);

    // Timeout: gated ring oscillator + ripple counter, both cleared
    // whenever the controller is not actively waiting on the core.
    // `rstn` pins the oscillator's enable to a defined low during
    // reset — a NAND-closed ring only self-initialises while its
    // enable is low, and the request/acknowledge terms are still X
    // until the link's reset propagates.
    let waiting = b.and3("waiting", req_down, ack_n, rstn);
    let tosc = b.ring_oscillator_stages("tosc", waiting, (cfg.osc_stages | 1).max(13));
    let cnt_rstn = b.and2("cnt_rstn", rstn, waiting);
    let base = cfg.timeout_tap as usize;
    let retries = cfg.max_retries as usize;
    let taps = b.ripple_counter("cnt", tosc, Some(cnt_rstn), base + retries);

    // Consecutive-failure count: a thermometer shift register clocked
    // by each backoff episode, cleared by any completed handshake.
    let ack_up_n = b.inv("ack_up_n", ack_up);
    let rc_rstn = b.and2("rc_rstn", rstn, ack_up_n);
    let rc = b.shift_register("rc", one, backoff, Some(rc_rstn), retries);

    // Tap selection: failure count j arms tap `timeout_tap + j`, so
    // every consecutive retry waits twice as long before timing out.
    let mut armed = Vec::with_capacity(retries);
    for j in 0..retries {
        let sel = if j == 0 {
            b.inv("sel0", rc[0])
        } else {
            let hi_n = b.inv(&format!("nrc{j}"), rc[j]);
            b.and2(&format!("sel{j}"), rc[j - 1], hi_n)
        };
        armed.push(b.and2(&format!("arm{j}"), sel, taps[base + j]));
    }
    let timeout = b.or_tree("timeout", &armed);

    // Watchdog resync: after `resync_retries` consecutive failures,
    // pulse the drain. The set arm drops once the delayed copy comes
    // back (the David cell is set-dominant), letting the clear win;
    // the tail keeps the backoff held until the released resets have
    // settled.
    let drain_done = b.buf_chain("drain", resync, DRAIN_BUFS);
    let rs_trig = b.and2("rs_trig", backoff, rc[cfg.resync_retries as usize - 1]);
    let ndrain = b.inv("ndrain", drain_done);
    let rs_set = b.and2("rs_set", rs_trig, ndrain);
    b.david_cell_into("resync", resync, rs_set, drain_done, Some(rstn), false);
    let rs_tail = b.buf_chain("rs_tail", resync, DRAIN_TAIL_BUFS);
    let hold = b.or2("rs_hold", resync, rs_tail);
    let hold_n = b.inv("rs_hold_n", hold);

    // Bounded retries: give up, complete the handshake upstream and
    // let the scoreboard account the lost word.
    let gu_set = b.and2("gu_set", backoff, rc[retries - 1]);
    let giveup = b.david_cell("giveup", gu_set, nreq_up, Some(rstn), false);

    // The backoff episode flag: set by either failure kind, cleared
    // once the core has returned to zero, any drain has settled *and*
    // the verdict guard has drained — the guard trails the acknowledge
    // by its full delay, and releasing the backoff while the failed
    // word's guard is still high would let `ack_ok` fire a spurious
    // good-completion for a word that was just NACKed.
    let fail_any = b.or2("fail_any", fail_nack, timeout);
    let nguard = b.inv("nguard", ack_guard);
    let quiet0 = b.and3("retry_ok", ack_n, nack_n, hold_n);
    let quiet = b.and2("retry_quiet", quiet0, nguard);
    b.david_cell_into("backoff", backoff, fail_any, quiet, Some(rstn), false);

    let ngiveup = b.inv("ngiveup", giveup);
    let req_core = b.and3("req_core", req_up, nbackoff, ngiveup);
    let (req_out, degraded) = if degrade {
        // Sticky degrade to per-transfer-ack pacing: once the first
        // resync fires, every request crawls through the pace chain.
        let zero = b.tie("zero", Value::zero(1));
        let dg = b.david_cell("degraded", rs_trig, zero, Some(rstn), false);
        let slow = b.buf_chain("pace", req_core, PACE_BUFS);
        (b.mux2("req_sel", dg, req_core, slow), Some(dg))
    } else {
        (req_core, None)
    };
    b.buf_into("req_drv", req_down, req_out);

    let ack_up_core = b.or2("ack_up_core", ack_ok, giveup);
    b.buf_into("ack_up_drv", ack_up, ack_up_core);
    b.pop_scope();

    RetryPorts {
        req_down,
        ack_up,
        resync,
        signals: RecoverySignals {
            nack: nack_heard,
            retry: backoff,
            timeout,
            resync,
            degraded,
            gave_up: giveup,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::{Simulator, Time};
    use sal_tech::St012Library;
    use std::cell::Cell;
    use std::rc::Rc;

    struct Rig {
        sim: Simulator,
        req_up: SignalId,
        ack_core: SignalId,
        nack: SignalId,
        ports: RetryPorts,
    }

    fn rig(cfg: &LinkConfig, degrade: bool) -> Rig {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let req_up = b.input("req_up", 1);
        let ack_core = b.input("ack_core", 1);
        let nack = b.input("nack", 1);
        let ports = build_retry(&mut b, "retry", cfg, req_up, ack_core, nack, rstn, degrade);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))]);
        Rig { sim, req_up, ack_core, nack, ports }
    }

    /// Counts rising edges of `sig` — catches pulses shorter than any
    /// polling interval.
    fn rising(sim: &mut Simulator, name: &str, sig: SignalId) -> Rc<Cell<u64>> {
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        let mut prev = false;
        sim.monitor(name, sig, move |_t, v| {
            let high = v.is_high();
            if high && !prev {
                c.set(c.get() + 1);
            }
            prev = high;
        });
        count
    }

    #[test]
    fn clean_word_passes_straight_through() {
        let cfg = LinkConfig::default();
        let mut r = rig(&cfg, false);
        r.sim.stimulus(
            r.req_up,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))],
        );
        r.sim.stimulus(r.nack, &[(Time::ZERO, Value::zero(1))]);
        // The "core" acks shortly after seeing the request.
        r.sim.stimulus(
            r.ack_core,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(3), Value::one(1))],
        );
        // The upstream acknowledge waits out the verdict guard (the
        // NACK-or-silence window) before completing.
        r.sim.run_until(Time::from_ns(4)).unwrap();
        assert!(r.sim.value(r.ports.req_down).is_high(), "request forwarded");
        assert!(r.sim.value(r.ports.ack_up).is_low(), "completion held for the verdict window");
        r.sim.run_until(Time::from_ns(7)).unwrap();
        assert!(r.sim.value(r.ports.ack_up).is_high(), "good completion acked upstream");
        assert!(r.sim.value(r.ports.signals.retry).is_low(), "no backoff episode");
    }

    #[test]
    fn nack_triggers_a_retry_pulse() {
        let cfg = LinkConfig::default();
        let mut r = rig(&cfg, false);
        r.sim.stimulus(
            r.req_up,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))],
        );
        // A failed word: NACK leads, ACK completes, both then return
        // to zero as the four-phase protocol drains.
        r.sim.stimulus(
            r.nack,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(3), Value::one(1)),
                (Time::from_ns(5), Value::zero(1)),
            ],
        );
        r.sim.stimulus(
            r.ack_core,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(3200), Value::one(1)),
                (Time::from_ps(4600), Value::zero(1)),
            ],
        );
        let mut saw_backoff = false;
        let mut req_dropped = false;
        let flag = r.ports.signals.retry;
        let req = r.ports.req_down;
        let mut t = Time::from_ns(3);
        while t < Time::from_ns(8) {
            r.sim.run_until(t).unwrap();
            saw_backoff |= r.sim.value(flag).is_high();
            if saw_backoff {
                req_dropped |= r.sim.value(req).is_low();
            }
            t += Time::from_ps(100);
        }
        assert!(saw_backoff, "NACK-classified completion raised the backoff flag");
        assert!(req_dropped, "request withdrawn for the return-to-zero retry");
        r.sim.run_until(Time::from_ns(10)).unwrap();
        assert!(r.sim.value(flag).is_low(), "backoff self-clears once the core is quiet");
        assert!(r.sim.value(req).is_high(), "request re-raised: the retry");
        assert!(r.sim.value(r.ports.ack_up).is_low(), "failed word was not acked upstream");
    }

    #[test]
    fn wedged_handshake_times_out_resyncs_and_gives_up() {
        // Small policy so the episode fits a short sim: first timeout
        // after 2^2 oscillator periods, resync after 1 failure, give
        // up after 2.
        let cfg = LinkConfig {
            max_retries: 2,
            resync_retries: 1,
            timeout_tap: 2,
            ..LinkConfig::default()
        };
        let mut r = rig(&cfg, false);
        let timeouts = rising(&mut r.sim, "timeouts", r.ports.signals.timeout);
        let resyncs = rising(&mut r.sim, "resyncs", r.ports.resync);
        // Raise the request at 1 ns; upstream withdraws it (as the
        // interface would on seeing the give-up ack) at 150 ns, far
        // past the whole escalation.
        r.sim.stimulus(
            r.req_up,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(1), Value::one(1)),
                (Time::from_ns(150), Value::zero(1)),
            ],
        );
        r.sim.stimulus(r.nack, &[(Time::ZERO, Value::zero(1))]);
        // The core never answers: a wedged link.
        r.sim.stimulus(r.ack_core, &[(Time::ZERO, Value::zero(1))]);
        let mut gave_up = false;
        let mut t = Time::from_ns(1);
        while t < Time::from_ns(140) && !gave_up {
            r.sim.run_until(t).unwrap();
            gave_up = r.sim.value(r.ports.signals.gave_up).is_high();
            t += Time::from_ps(200);
        }
        assert!(gave_up, "bounded retries ended in a give-up");
        assert!(timeouts.get() >= 1, "ring-oscillator timeout fired");
        assert!(resyncs.get() >= 1, "watchdog resync drained the link");
        // Let the or2+buffer behind the give-up flag settle before
        // sampling the upstream acknowledge.
        r.sim.run_until(t + Time::from_ns(1)).unwrap();
        assert!(r.sim.value(r.ports.ack_up).is_high(), "give-up completes the upstream handshake");
        // Upstream withdraws at 150 ns; the give-up must clear for
        // the next word.
        r.sim.run_until(Time::from_ns(170)).unwrap();
        assert!(r.sim.value(r.ports.signals.gave_up).is_low(), "give-up clears on withdrawal");
        assert!(r.sim.value(r.ports.ack_up).is_low());
    }

    #[test]
    fn degrade_flag_is_sticky_and_paces_requests() {
        let cfg = LinkConfig {
            max_retries: 3,
            resync_retries: 1,
            timeout_tap: 2,
            ..LinkConfig::default()
        };
        let mut r = rig(&cfg, true);
        let dg = r.ports.signals.degraded.expect("I3 controller exposes the degrade flag");
        r.sim.stimulus(
            r.req_up,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))],
        );
        r.sim.stimulus(r.nack, &[(Time::ZERO, Value::zero(1))]);
        r.sim.stimulus(r.ack_core, &[(Time::ZERO, Value::zero(1))]);
        let mut t = Time::from_ns(1);
        while t < Time::from_ns(200) && !r.sim.value(dg).is_high() {
            r.sim.run_until(t).unwrap();
            t += Time::from_ps(200);
        }
        assert!(r.sim.value(dg).is_high(), "first resync sets the degrade flag");
        // It never clears — even after the episode fully completes.
        r.sim.run_until(t + Time::from_ns(50)).unwrap();
        assert!(r.sim.value(dg).is_high(), "degrade is sticky");
    }
}
