//! End-to-end data-integrity scoreboard.
//!
//! The fault-injection experiments need a sharper verdict than "the
//! run finished": a marginal link can deliver the right *number* of
//! words with the wrong *contents* (bundled-data skew corrupting late
//! bits), deliver a word twice (a re-fired handshake), drop one, or
//! reorder neighbours. [`check_integrity`] compares the sent and
//! received word streams and classifies every discrepancy.

/// Counts of end-to-end delivery failures for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounts {
    /// Words offered by the sending switch.
    pub sent: usize,
    /// Words delivered to the receiving switch.
    pub received: usize,
    /// Delivered words whose payload matches no pending sent word at
    /// that position (bit errors in flight).
    pub corrupted: usize,
    /// Sent words that never arrived.
    pub lost: usize,
    /// Words delivered more times than they were sent.
    pub duplicated: usize,
    /// Words delivered out of order relative to the send stream.
    pub reordered: usize,
}

impl IntegrityCounts {
    /// `true` when every word arrived exactly once, in order, intact.
    pub fn is_clean(&self) -> bool {
        self.sent == self.received
            && self.corrupted == 0
            && self.lost == 0
            && self.duplicated == 0
            && self.reordered == 0
    }

    /// Total number of integrity violations of any class.
    pub fn violations(&self) -> usize {
        self.corrupted + self.lost + self.duplicated + self.reordered
    }
}

impl std::fmt::Display for IntegrityCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} delivered, {} corrupted, {} lost, {} duplicated, {} reordered",
            self.received, self.sent, self.corrupted, self.lost, self.duplicated, self.reordered
        )
    }
}

/// Compares the received word stream against the sent stream.
///
/// Classification walks both streams with a matching window:
///
/// * a received word equal to the next unmatched sent word is a clean,
///   in-order delivery;
/// * a received word equal to a *later* pending sent word is counted
///   as `reordered` (the skipped sent words stay pending);
/// * a received word equal to an *already matched* sent word is
///   `duplicated`;
/// * anything else is `corrupted`;
/// * pending sent words left at the end are `lost`.
pub fn check_integrity(sent: &[u64], received: &[u64]) -> IntegrityCounts {
    let mut counts = IntegrityCounts {
        sent: sent.len(),
        received: received.len(),
        ..IntegrityCounts::default()
    };
    let mut matched = vec![false; sent.len()];
    // Next in-order candidate: first unmatched sent index.
    let mut cursor = 0usize;
    for &w in received {
        while cursor < sent.len() && matched[cursor] {
            cursor += 1;
        }
        if cursor < sent.len() && sent[cursor] == w {
            matched[cursor] = true;
            continue;
        }
        // Out-of-order: some later pending word?
        if let Some(j) = (cursor..sent.len()).find(|&j| !matched[j] && sent[j] == w) {
            matched[j] = true;
            counts.reordered += 1;
            continue;
        }
        // Re-delivery of something already matched?
        if sent.iter().zip(&matched).any(|(&s, &m)| m && s == w) {
            counts.duplicated += 1;
            continue;
        }
        counts.corrupted += 1;
    }
    counts.lost = matched.iter().filter(|&&m| !m).count();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_clean() {
        let words = [1u64, 2, 3, 4];
        let c = check_integrity(&words, &words);
        assert!(c.is_clean(), "{c}");
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn corruption_detected() {
        let c = check_integrity(&[1, 2, 3], &[1, 0xBAD, 3]);
        assert_eq!(c.corrupted, 1);
        assert_eq!(c.lost, 1); // the real word 2 never arrived
        assert!(!c.is_clean());
    }

    #[test]
    fn loss_detected() {
        let c = check_integrity(&[1, 2, 3], &[1, 3]);
        assert_eq!(c.lost, 1);
        assert_eq!(c.reordered, 1); // 3 arrived while 2 was pending
        assert_eq!(c.corrupted, 0);
    }

    #[test]
    fn duplication_detected() {
        let c = check_integrity(&[1, 2], &[1, 1, 2]);
        assert_eq!(c.duplicated, 1);
        assert_eq!(c.lost, 0);
    }

    #[test]
    fn reorder_detected() {
        let c = check_integrity(&[1, 2, 3, 4], &[1, 3, 2, 4]);
        assert_eq!(c.reordered, 1);
        assert_eq!(c.lost, 0);
        assert_eq!(c.corrupted, 0);
    }

    #[test]
    fn repeated_payloads_match_pairwise() {
        // The same value sent twice and received twice is clean even
        // though the payloads are indistinguishable.
        let c = check_integrity(&[7, 7, 8], &[7, 7, 8]);
        assert!(c.is_clean(), "{c}");
    }
}
