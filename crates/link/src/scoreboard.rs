//! End-to-end data-integrity scoreboard.
//!
//! The fault-injection experiments need a sharper verdict than "the
//! run finished": a marginal link can deliver the right *number* of
//! words with the wrong *contents* (bundled-data skew corrupting late
//! bits), deliver a word twice (a re-fired handshake), drop one, or
//! reorder neighbours. [`check_integrity`] compares the sent and
//! received word streams and classifies every discrepancy.

/// Counts of end-to-end delivery failures for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounts {
    /// Words offered by the sending switch.
    pub sent: usize,
    /// Words delivered to the receiving switch.
    pub received: usize,
    /// Delivered words whose payload matches no pending sent word at
    /// that position (bit errors in flight).
    pub corrupted: usize,
    /// Sent words that never arrived.
    pub lost: usize,
    /// Words delivered more times than they were sent.
    pub duplicated: usize,
    /// Words delivered out of order relative to the send stream.
    pub reordered: usize,
}

impl IntegrityCounts {
    /// `true` when every word arrived exactly once, in order, intact.
    pub fn is_clean(&self) -> bool {
        self.sent == self.received
            && self.corrupted == 0
            && self.lost == 0
            && self.duplicated == 0
            && self.reordered == 0
    }

    /// Total number of integrity violations of any class.
    pub fn violations(&self) -> usize {
        self.corrupted + self.lost + self.duplicated + self.reordered
    }
}

impl std::fmt::Display for IntegrityCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} delivered, {} corrupted, {} lost, {} duplicated, {} reordered",
            self.received, self.sent, self.corrupted, self.lost, self.duplicated, self.reordered
        )
    }
}

/// Counters from the protection/recovery layer's observability taps,
/// collected per run when [`LinkConfig::protection`] is enabled (see
/// [`LinkRun::recovery`]).
///
/// These complete the scoreboard's NACK accounting: a word the
/// checker rejected shows up here as a NACK (and usually a retry),
/// while its eventual fate shows up in [`IntegrityCounts`] — clean if
/// a retransmission got it through, `lost` if the transmitter gave
/// up, never silently `corrupted` while detection holds.
///
/// [`LinkConfig::protection`]: crate::LinkConfig::protection
/// [`LinkRun::recovery`]: crate::LinkRun::recovery
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// NACK pulses heard at the transmitter (words the receive-side
    /// checker consumed as corrupted).
    pub nacks: u64,
    /// Backoff episodes (each one is a retransmission attempt, by
    /// NACK or by timeout).
    pub retries: u64,
    /// Retransmissions triggered by the ring-oscillator timeout
    /// rather than an explicit NACK.
    pub timeouts: u64,
    /// Watchdog-triggered resync drains of the link core.
    pub resyncs: u64,
    /// Words abandoned after `max_retries` consecutive failures
    /// (each one is a `lost` word in [`IntegrityCounts`]).
    pub gave_up: u64,
    /// `true` if the I3 link degraded to per-transfer-ack pacing at
    /// any point (sticky for the rest of the run).
    pub degraded: bool,
}

impl RecoveryCounts {
    /// `true` when the recovery layer never had to act: no NACKs, no
    /// retries, no resyncs, no abandoned words.
    pub fn is_quiet(&self) -> bool {
        self.nacks == 0
            && self.retries == 0
            && self.timeouts == 0
            && self.resyncs == 0
            && self.gave_up == 0
            && !self.degraded
    }
}

impl std::fmt::Display for RecoveryCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nacks, {} retries ({} by timeout), {} resyncs, {} abandoned{}",
            self.nacks,
            self.retries,
            self.timeouts,
            self.resyncs,
            self.gave_up,
            if self.degraded { ", degraded" } else { "" }
        )
    }
}

/// Compares the received word stream against the sent stream.
///
/// Classification walks both streams with a matching window:
///
/// * a received word equal to the next unmatched sent word is a clean,
///   in-order delivery;
/// * a received word equal to a *later* pending sent word is counted
///   as `reordered` (the skipped sent words stay pending);
/// * a received word equal to an *already matched* sent word is
///   `duplicated`;
/// * anything else is `corrupted`;
/// * pending sent words left at the end are `lost`.
pub fn check_integrity(sent: &[u64], received: &[u64]) -> IntegrityCounts {
    let mut counts = IntegrityCounts {
        sent: sent.len(),
        received: received.len(),
        ..IntegrityCounts::default()
    };
    let mut matched = vec![false; sent.len()];
    // Next in-order candidate: first unmatched sent index.
    let mut cursor = 0usize;
    for &w in received {
        while cursor < sent.len() && matched[cursor] {
            cursor += 1;
        }
        if cursor < sent.len() && sent[cursor] == w {
            matched[cursor] = true;
            continue;
        }
        // Out-of-order: some later pending word?
        if let Some(j) = (cursor..sent.len()).find(|&j| !matched[j] && sent[j] == w) {
            matched[j] = true;
            counts.reordered += 1;
            continue;
        }
        // Re-delivery of something already matched?
        if sent.iter().zip(&matched).any(|(&s, &m)| m && s == w) {
            counts.duplicated += 1;
            continue;
        }
        counts.corrupted += 1;
    }
    counts.lost = matched.iter().filter(|&&m| !m).count();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_clean() {
        let words = [1u64, 2, 3, 4];
        let c = check_integrity(&words, &words);
        assert!(c.is_clean(), "{c}");
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn corruption_detected() {
        let c = check_integrity(&[1, 2, 3], &[1, 0xBAD, 3]);
        assert_eq!(c.corrupted, 1);
        assert_eq!(c.lost, 1); // the real word 2 never arrived
        assert!(!c.is_clean());
    }

    #[test]
    fn loss_detected() {
        let c = check_integrity(&[1, 2, 3], &[1, 3]);
        assert_eq!(c.lost, 1);
        assert_eq!(c.reordered, 1); // 3 arrived while 2 was pending
        assert_eq!(c.corrupted, 0);
    }

    #[test]
    fn duplication_detected() {
        let c = check_integrity(&[1, 2], &[1, 1, 2]);
        assert_eq!(c.duplicated, 1);
        assert_eq!(c.lost, 0);
    }

    #[test]
    fn reorder_detected() {
        let c = check_integrity(&[1, 2, 3, 4], &[1, 3, 2, 4]);
        assert_eq!(c.reordered, 1);
        assert_eq!(c.lost, 0);
        assert_eq!(c.corrupted, 0);
    }

    #[test]
    fn repeated_payloads_match_pairwise() {
        // The same value sent twice and received twice is clean even
        // though the payloads are indistinguishable.
        let c = check_integrity(&[7, 7, 8], &[7, 7, 8]);
        assert!(c.is_clean(), "{c}");
    }
}
