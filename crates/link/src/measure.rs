//! The paper's measurement protocol (§V): drive the worst-case flit
//! pattern through a link, determine the "in use" time, and average
//! energy over a window set by the target usage factor (the paper
//! reports 50 % usage: a 4-flit transfer taking ≈70 ns measured over a
//! 140 ns window at 100 MHz).
//!
//! [`run`] is the single entry point. Observability is opt-in through
//! [`MeasureOptions`]: [`MeasureOptions::with_trace`] retains the
//! transition trace as a [`TraceDump`] on the returned [`LinkRun`],
//! and [`MeasureOptions::with_metrics`] additionally computes the
//! derived [`LinkMetrics`] report (handshake latency histograms,
//! per-block energy attribution, occupancy, burst timing). Untraced
//! runs take the kernel's zero-overhead commit path and are
//! bit-identical to builds without the trace hook.

use sal_cells::{AreaLedger, BuildError, CircuitBuilder};
use sal_des::{
    DeadlockReport, FaultPlan, MemoryTrace, RingTrace, SignalId, SimError, SimProfile,
    Simulator, Time, TraceDump,
};
use sal_tech::{clock_power_uw, PowerBreakdown, PowerMeter, St012Library};

use std::cell::Cell;
use std::rc::Rc;

use crate::assembly::build_family;
use crate::config::ConfigError;
use crate::metrics::{self, LinkMetrics};
use crate::retry::RecoverySignals;
use crate::scoreboard::{check_integrity, IntegrityCounts, RecoveryCounts};
use crate::spec::{LinkFamily, LinkSpec, SpecError};
use crate::testbench::{
    attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
};
use crate::LinkConfig;

/// How much of the transition trace a run retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing: the kernel commit path stays on its zero-overhead
    /// `None` branch (the default).
    #[default]
    Off,
    /// Retain every committed transition.
    Full,
    /// Retain only the most recent *N* transitions (bounded memory
    /// for long runs; "what happened just before it wedged").
    Ring(usize),
}

/// Options for a measured link run.
///
/// Construct with [`MeasureOptions::default`] and layer adjustments
/// with the builder methods. Protection and retry policy belong on
/// the [`LinkSpec`], not here — options only shape *how* a run is
/// observed, never *what* link is generated:
///
/// ```
/// use sal_link::{run_spec, LinkConfig, LinkFamily, LinkSpec, MeasureOptions};
/// use sal_link::{ProtectionMode, TraceMode};
/// let spec = LinkSpec::builder()
///     .family(LinkFamily::PerTransfer)
///     .protection(ProtectionMode::Parity)
///     .build()
///     .unwrap();
/// let opts = MeasureOptions::default()
///     .with_usage(0.5)
///     .with_trace(TraceMode::Full)
///     .with_metrics();
/// let run = run_spec(&spec, &LinkConfig::default(), &[1, 2], &opts).unwrap();
/// assert!(run.trace.is_some() && run.metrics().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Link usage factor the power is averaged at (paper: 0.5).
    pub usage: f64,
    /// Give up if the transfer has not completed by this simulated
    /// time (indicates a deadlock — surfaced as
    /// [`RunFailure::Deadlock`]).
    pub timeout: Time,
    /// Technology library (calibration knobs live here).
    pub lib: St012Library,
    /// Fixed averaging window. The paper keeps the *same* simulation
    /// run time when re-measuring at higher clock speeds ("the same
    /// simulation run time was used … to provide a comparison", §V);
    /// pass the 100 MHz run's window here to follow that protocol.
    /// `None` derives the window from this run's own in-use time.
    pub window_override: Option<Time>,
    /// Fault plan applied to the simulator before the run (delay
    /// derating/sigma, stuck-ats, glitches, bundled-data skew).
    /// `None`/empty keeps the kernel on its fault-free fast path, so
    /// clean measurements are bit-identical to builds without this
    /// field.
    pub fault_plan: Option<FaultPlan>,
    /// How long reset is asserted before the transfer starts. Must
    /// cover the slowest control path's settling time, or undefined
    /// (X) values latch into the asynchronous state cells exactly as
    /// in unreset silicon. The 2 ns default covers the longest
    /// matched-delay chain at the slow technology corner; fault plans
    /// that derate gate delays need this stretched proportionally.
    pub reset_hold: Time,
    /// Transition-trace retention ([`TraceMode::Off`] by default).
    pub trace: TraceMode,
    /// Compute the [`LinkMetrics`] report. Implies a full trace for
    /// the duration of the run (the dump itself is only retained on
    /// the [`LinkRun`] if [`MeasureOptions::trace`] asks for it).
    pub metrics: bool,
    /// Kernel event budget for the run, `None` for the kernel default.
    /// Fault campaigns that legitimately provoke long retry storms set
    /// this to bound how much simulated work a wedged run may consume
    /// before the event-limit watchdog declares a deadlock.
    pub watchdog_horizon: Option<u64>,
    /// Execute combinational cells through the compiled netlist engine
    /// (default). Compiled runs are bit-identical to interpreted ones
    /// — the golden-replay suite enforces it — so this is purely a
    /// wall-clock knob; [`MeasureOptions::without_compile`] exists for
    /// A/B measurements and for pinning down a suspected compiler bug.
    pub compiled: bool,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            usage: 0.5,
            timeout: Time::from_us(50),
            lib: St012Library::default(),
            window_override: None,
            fault_plan: None,
            reset_hold: Time::from_ns(2),
            trace: TraceMode::Off,
            metrics: false,
            watchdog_horizon: None,
            compiled: true,
        }
    }
}

impl MeasureOptions {
    /// Sets the usage factor the power is averaged at.
    #[must_use]
    pub fn with_usage(mut self, usage: f64) -> Self {
        self.usage = usage;
        self
    }

    /// Sets the deadlock timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Time) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the technology library.
    #[must_use]
    pub fn with_lib(mut self, lib: St012Library) -> Self {
        self.lib = lib;
        self
    }

    /// Fixes the averaging window (the paper's same-run-time protocol).
    #[must_use]
    pub fn with_window(mut self, window: Time) -> Self {
        self.window_override = Some(window);
        self
    }

    /// Applies a fault plan before the run.
    ///
    /// Composes with the declarative spec API: the spec decides what
    /// protection the generated link carries, the options decide what
    /// faults the measurement injects.
    ///
    /// ```
    /// use sal_des::{FaultPlan, Time};
    /// use sal_link::{run_spec, LinkConfig, LinkSpec, MeasureOptions, ProtectionMode, TraceMode};
    /// let spec = LinkSpec::builder().protection(ProtectionMode::Crc8).build().unwrap();
    /// let opts = MeasureOptions::default()
    ///     .with_fault_plan(FaultPlan::new(7))
    ///     .with_trace(TraceMode::Ring(256));
    /// let run = run_spec(&spec, &LinkConfig::default(), &[3, 4], &opts).unwrap();
    /// assert!(run.recovery.expect("protected link carries counters").is_quiet());
    /// ```
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the reset assertion time.
    #[must_use]
    pub fn with_reset_hold(mut self, hold: Time) -> Self {
        self.reset_hold = hold;
        self
    }

    /// Retains the transition trace on the returned [`LinkRun`].
    ///
    /// ```
    /// use sal_link::{MeasureOptions, TraceMode};
    /// let opts = MeasureOptions::default().with_trace(TraceMode::Ring(64));
    /// assert_eq!(opts.trace, TraceMode::Ring(64));
    /// ```
    #[must_use]
    pub fn with_trace(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Computes the [`LinkMetrics`] report for the run.
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Bounds the kernel event budget for the run (the event-limit
    /// watchdog then converts a runaway retry storm into a
    /// [`RunFailure::Deadlock`] instead of simulating indefinitely).
    /// `None` — the default — keeps the kernel's own limit, leaving
    /// the run bit-identical to one made without this option.
    ///
    /// ```
    /// use sal_link::MeasureOptions;
    /// let opts = MeasureOptions::default().with_watchdog_horizon(1_000_000);
    /// assert_eq!(opts.watchdog_horizon, Some(1_000_000));
    /// assert_eq!(MeasureOptions::default().watchdog_horizon, None);
    /// ```
    #[must_use]
    pub fn with_watchdog_horizon(mut self, events: u64) -> Self {
        self.watchdog_horizon = Some(events);
        self
    }

    /// Keeps the run on the interpreted event loop (A/B baseline for
    /// the compiled engine).
    ///
    /// ```
    /// use sal_link::MeasureOptions;
    /// assert!(MeasureOptions::default().compiled);
    /// assert!(!MeasureOptions::default().without_compile().compiled);
    /// ```
    #[must_use]
    pub fn without_compile(mut self) -> Self {
        self.compiled = false;
        self
    }
}

/// Why a run did not produce a measurement.
#[derive(Debug)]
pub enum RunFailure {
    /// The configuration (or an option derived from it, like the
    /// usage factor) is inconsistent — reported before anything is
    /// built.
    Config(ConfigError),
    /// A [`LinkSpec`] could not be constructed (call sites that build
    /// the spec inline propagate the builder's typed error here; the
    /// [`SpecError`] is the [`source`](std::error::Error::source)).
    Spec(SpecError),
    /// The netlist could not be constructed (double drivers…).
    Build(BuildError),
    /// The fault plan named a signal that does not exist.
    Fault(SimError),
    /// The transfer wedged: not every word was delivered before the
    /// timeout (or the kernel hit its event limit). When the handshake
    /// watchdog recognises a stalled req/ack pair, `diagnosis` names
    /// it.
    Deadlock {
        /// The link family that wedged.
        family: LinkFamily,
        /// Words delivered before the stall.
        delivered: usize,
        /// Words expected.
        expected: usize,
        /// Simulated time at which the run was abandoned.
        at: Time,
        /// Watchdog analysis of the stalled handshakes, if any.
        diagnosis: Option<DeadlockReport>,
        /// Recovery-layer activity up to the stall, when the link was
        /// built with protection (a stuck-at campaign that exhausts
        /// `max_retries` on every word legitimately ends here — the
        /// retries and give-ups it logged are still the measurement).
        recovery: Option<RecoveryCounts>,
    },
    /// The simulator failed for another reason.
    Sim(SimError),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Config(e) => write!(f, "invalid configuration: {e}"),
            RunFailure::Spec(e) => write!(f, "invalid link spec: {e}"),
            RunFailure::Build(e) => write!(f, "netlist construction failed: {e}"),
            RunFailure::Fault(e) => write!(f, "fault plan rejected: {e}"),
            RunFailure::Deadlock { family, delivered, expected, at, diagnosis, recovery } => {
                write!(
                    f,
                    "{} deadlocked: {delivered}/{expected} words delivered by {at}",
                    family.label()
                )?;
                if let Some(r) = recovery {
                    write!(f, " (recovery: {r})")?;
                }
                if let Some(d) = diagnosis {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
            RunFailure::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RunFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunFailure::Config(e) => Some(e),
            RunFailure::Spec(e) => Some(e),
            RunFailure::Build(e) => Some(e),
            RunFailure::Fault(e) | RunFailure::Sim(e) => Some(e),
            RunFailure::Deadlock { .. } => None,
        }
    }
}

impl From<SpecError> for RunFailure {
    fn from(e: SpecError) -> Self {
        RunFailure::Spec(e)
    }
}

/// The outcome of one measured transfer.
#[derive(Debug)]
pub struct LinkRun {
    /// Which link family was measured.
    pub family: LinkFamily,
    /// The spec the link was generated from, when the run came in
    /// through [`run_spec`].
    pub spec: Option<LinkSpec>,
    /// The effective configuration measured (spec merged onto the
    /// physical base).
    pub cfg: LinkConfig,
    /// `(time, word)` accepted from the sending switch.
    pub sent: Vec<(Time, u64)>,
    /// `(time, word)` delivered to the receiving switch.
    pub received: Vec<(Time, u64)>,
    /// First-flit-in to last-flit-out (the paper's "in use" time).
    pub in_use: Time,
    /// The averaging window (`in_use / usage`).
    pub window: Time,
    /// Per-scope average power from simulated switching activity, µW.
    pub sim_power: PowerBreakdown,
    /// Analytical clock power per block scope, µW.
    pub clock_power: Vec<(String, f64)>,
    /// Cell area per scope, µm².
    pub area: AreaLedger,
    /// Root scope of the link.
    pub scope: String,
    /// Kernel events processed over the whole run (netlist activity
    /// metric; useful for throughput accounting in benchmarks).
    pub events: u64,
    /// End-to-end data-integrity verdict (sent vs received payloads).
    pub integrity: IntegrityCounts,
    /// Kernel profiling counters for this run: events, commits,
    /// wakes, delta batches, queue occupancy, wall time per sim-ns.
    pub profile: SimProfile,
    /// The retained transition trace, when
    /// [`MeasureOptions::with_trace`] asked for one. Serialise it with
    /// [`TraceDump::write_vcd`] or [`TraceDump::write_jsonl`].
    pub trace: Option<TraceDump>,
    /// Recovery-layer activity counters, populated whenever the link
    /// was built with [`LinkConfig::protection`] enabled (`None`
    /// otherwise — no probes are attached to an unprotected link).
    pub recovery: Option<RecoveryCounts>,
    metrics: Option<LinkMetrics>,
}

impl LinkRun {
    /// The words delivered, in order.
    pub fn received_words(&self) -> Vec<u64> {
        self.received.iter().map(|&(_, w)| w).collect()
    }

    /// The derived metrics report, when the run was measured with
    /// [`MeasureOptions::with_metrics`].
    pub fn metrics(&self) -> Option<&LinkMetrics> {
        self.metrics.as_ref()
    }

    /// Sustained delivery rate at the sink, MFlit/s (needs ≥2 flits).
    pub fn throughput_mflits(&self) -> f64 {
        if self.received.len() < 2 {
            return 0.0;
        }
        let t0 = self.received.first().expect("nonempty").0;
        let t1 = self.received.last().expect("nonempty").0;
        if t1 == t0 {
            return 0.0;
        }
        (self.received.len() - 1) as f64 / (t1 - t0).as_secs() / 1e6
    }

    /// Simulated switching power of the subtree at `prefix`, µW.
    pub fn sim_power_uw(&self, prefix: &str) -> f64 {
        self.sim_power.subtree_uw(prefix)
    }

    /// Analytical clock power of the whole link, µW.
    pub fn clock_power_uw(&self) -> f64 {
        self.clock_power.iter().map(|(_, p)| p).sum()
    }

    /// Total link power (simulated switching + clock), µW.
    pub fn total_power_uw(&self) -> f64 {
        self.sim_power_uw(&self.scope) + self.clock_power_uw()
    }

    /// Power grouped into the paper's Fig 14 categories.
    pub fn block_power(&self) -> BlockPower {
        let s = &self.scope;
        let conv_sim = self.sim_power_uw(&format!("{s}.tx_if"))
            + self.sim_power_uw(&format!("{s}.rx_if"));
        let serdes =
            self.sim_power_uw(&format!("{s}.ser")) + self.sim_power_uw(&format!("{s}.des"));
        let buffers = self.sim_power_uw(&format!("{s}.wire"))
            + self.sim_power_uw(&format!("{s}.buffers"));
        let clock = self.clock_power_uw();
        let total = self.total_power_uw();
        // Anything not in a named block (top-level glue buffers).
        let other = (total - conv_sim - serdes - buffers - clock).max(0.0);
        BlockPower {
            conv_uw: (conv_sim + clock).max(0.0),
            serdes_uw: serdes.max(0.0),
            buffers_uw: buffers.max(0.0),
            other_uw: other,
            total_uw: total.max(0.0),
        }
    }

    /// Total link cell area, µm².
    pub fn area_um2(&self) -> f64 {
        self.area.subtree_um2(&self.scope)
    }
}

/// Power grouped into the paper's Fig 14 categories, µW.
///
/// `conv_uw` is the synch/asynch conversion circuitry (for I1 it holds
/// the link's clock power, matching the paper's convention of showing
/// I1's power under its clocked buffers — see `buffers_uw`).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct BlockPower {
    /// Sync↔async interfaces, including their clock load.
    pub conv_uw: f64,
    /// Serializer + deserializer.
    pub serdes_uw: f64,
    /// Wire buffers / pipeline registers (switching only).
    pub buffers_uw: f64,
    /// Glue not attributable to a named block.
    pub other_uw: f64,
    /// Whole link.
    pub total_uw: f64,
}

/// Monitors attached to the recovery layer's observability taps:
/// rising-edge counters on the episode flags, plus the level of the
/// sticky degrade flag read out at collection time.
struct RecoveryProbes {
    nacks: Rc<Cell<u64>>,
    retries: Rc<Cell<u64>>,
    timeouts: Rc<Cell<u64>>,
    resyncs: Rc<Cell<u64>>,
    gave_up: Rc<Cell<u64>>,
    degraded: Option<SignalId>,
}

/// Counts rising edges of `sig` through a kernel monitor (catches
/// pulses far narrower than any polling interval).
fn count_rising(sim: &mut Simulator, name: &str, sig: SignalId) -> Rc<Cell<u64>> {
    let count = Rc::new(Cell::new(0u64));
    let c = count.clone();
    let mut prev = false;
    sim.monitor(name, sig, move |_t, v| {
        let high = v.is_high();
        if high && !prev {
            c.set(c.get() + 1);
        }
        prev = high;
    });
    count
}

impl RecoveryProbes {
    fn attach(sim: &mut Simulator, taps: &RecoverySignals) -> Self {
        RecoveryProbes {
            nacks: count_rising(sim, "probe_nack", taps.nack),
            retries: count_rising(sim, "probe_retry", taps.retry),
            timeouts: count_rising(sim, "probe_timeout", taps.timeout),
            resyncs: count_rising(sim, "probe_resync", taps.resync),
            gave_up: count_rising(sim, "probe_gave_up", taps.gave_up),
            degraded: taps.degraded,
        }
    }

    fn collect(&self, sim: &Simulator) -> RecoveryCounts {
        RecoveryCounts {
            nacks: self.nacks.get(),
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            resyncs: self.resyncs.get(),
            gave_up: self.gave_up.get(),
            degraded: self.degraded.is_some_and(|s| sim.value(s).is_high()),
        }
    }
}

/// Runs `words` through a freshly generated link described by `spec`
/// and measures power per the paper's protocol. The single entry
/// point for link measurement: misconfiguration, build failures, bad
/// fault plans and deadlocks all come back as a structured
/// [`RunFailure`] — never a panic.
///
/// `base` supplies the physical parameters the spec does not name
/// (wire length, clock period, FIFO depth, oscillator stages); the
/// spec decides word width, serialization ratio, buffer count,
/// protection and retry policy.
///
/// ```
/// use sal_link::{run_spec, LinkConfig, LinkFamily, LinkSpec, MeasureOptions};
/// let spec = LinkSpec::builder().family(LinkFamily::PerTransfer).build().unwrap();
/// let words = vec![0xAAAA_AAAA, 0x5555_5555];
/// let run = run_spec(&spec, &LinkConfig::default(), &words,
///                    &MeasureOptions::default()).unwrap();
/// assert_eq!(run.received_words(), words);
/// ```
pub fn run_spec(
    spec: &LinkSpec,
    base: &LinkConfig,
    words: &[u64],
    opts: &MeasureOptions,
) -> Result<LinkRun, RunFailure> {
    let cfg = spec.apply(base);
    run_family(spec.family(), &cfg, Some(spec.clone()), words, opts)
}

/// The measurement protocol behind [`run_spec`]: `cfg` is the final
/// effective configuration.
fn run_family(
    family: LinkFamily,
    cfg: &LinkConfig,
    spec: Option<LinkSpec>,
    words: &[u64],
    opts: &MeasureOptions,
) -> Result<LinkRun, RunFailure> {
    cfg.check().map_err(RunFailure::Config)?;
    if !(opts.usage > 0.0 && opts.usage <= 1.0) {
        return Err(RunFailure::Config(ConfigError::UsageOutOfRange { usage: opts.usage }));
    }
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let handles = build_family(&mut builder, family, "link", cfg).map_err(RunFailure::Build)?;
    let area = builder.finish();
    if let Some(plan) = &opts.fault_plan {
        sim.apply_fault_plan(plan).map_err(RunFailure::Fault)?;
    }
    if let Some(limit) = opts.watchdog_horizon {
        sim.set_max_events(limit);
    }
    if opts.compiled {
        sim.compile();
    }
    let probes = handles.recovery.as_ref().map(|taps| RecoveryProbes::attach(&mut sim, taps));

    // Hold reset until every control path has settled to a defined
    // level (standard reset-deassertion practice: an X arriving at an
    // asynchronous state cell after release would latch, exactly like
    // unreset silicon). `opts.reset_hold` defaults to 2 ns — the
    // longest matched-delay chain at the slow technology corner — and
    // is stretched by fault plans that derate gate delays.
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, sal_des::Value::zero(1)), (opts.reset_hold, sal_des::Value::one(1))],
    );
    let (src, sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words.to_vec(),
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(&mut sim, "tb_src", src, Time::ZERO);
    let (snk, received) = SyncFlitSink::new(
        handles.clk,
        handles.valid_out,
        handles.flit_out,
        handles.stall_in,
    );
    attach_sync_sink(&mut sim, "tb_snk", snk, Time::ZERO);

    // Install the trace sink only now, once the netlist (link +
    // testbench) is final, so the captured signal table is complete.
    // Metrics need every transition, so they force a full trace even
    // under `TraceMode::Ring`.
    match (opts.trace, opts.metrics) {
        (TraceMode::Off, false) => {}
        (TraceMode::Ring(n), false) => sim.set_trace_sink(Box::new(RingTrace::new(n))),
        _ => sim.set_trace_sink(Box::new(MemoryTrace::new())),
    }

    let meter = PowerMeter::start(&sim);
    // Run in slices until everything arrived (or timeout).
    let slice = cfg.clk_period * 32;
    loop {
        let now = sim.now();
        if received.borrow().len() >= words.len() {
            break;
        }
        if now >= opts.timeout {
            return Err(RunFailure::Deadlock {
                family,
                delivered: received.borrow().len(),
                expected: words.len(),
                at: now,
                diagnosis: sim.deadlock_report(),
                recovery: probes.as_ref().map(|p| p.collect(&sim)),
            });
        }
        match sim.run_for(slice) {
            Ok(_) => {}
            Err(SimError::EventLimitExceeded { at, diagnosis, .. }) => {
                // The kernel already ran the watchdog when it gave up;
                // reuse its analysis rather than re-deriving it.
                return Err(RunFailure::Deadlock {
                    family,
                    delivered: received.borrow().len(),
                    expected: words.len(),
                    at,
                    diagnosis: diagnosis.map(|d| *d),
                    recovery: probes.as_ref().map(|p| p.collect(&sim)),
                });
            }
            Err(e) => return Err(RunFailure::Sim(e)),
        }
    }

    let sent = sent.borrow().clone();
    let received = received.borrow().clone();
    let in_use = match (sent.first(), received.last()) {
        (Some(&(t0, _)), Some(&(t1, _))) if t1 > t0 => t1 - t0,
        _ => cfg.clk_period,
    };
    // Extend the run so the measured window is exactly in_use / usage
    // (or the externally fixed window, per the paper's protocol).
    let window = opts.window_override.unwrap_or_else(|| {
        Time::from_ns_f64(in_use.as_ns() / opts.usage)
    });
    let t_window_end = sent.first().map_or(Time::ZERO, |&(t, _)| t) + window;
    if sim.now() < t_window_end {
        sim.run_until(t_window_end).map_err(RunFailure::Sim)?;
    }
    let sim_power = {
        // The meter measured since t=0; rescale to the usage window.
        let raw = meter.finish(&sim);
        let scale = sim.now().as_secs() / window.as_secs();
        PowerBreakdown {
            scopes: raw.scopes.into_iter().map(|(p, v)| (p, v * scale)).collect(),
            window,
        }
    };
    let clock_power: Vec<(String, f64)> = handles
        .clock_sinks
        .iter()
        .map(|(scope, bits)| {
            (
                scope.clone(),
                clock_power_uw(&opts.lib, *bits, handles.clock_tree_um, cfg.clk_hz()),
            )
        })
        .collect();

    let integrity = check_integrity(
        &sent.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
        &received.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
    );

    let profile = sim.profile();
    let dump = TraceDump::capture(&sim);
    let metrics = if opts.metrics {
        dump.as_ref().map(|dump| {
            let watches: Vec<(String, SignalId, SignalId)> = sim
                .handshake_watches()
                .map(|(label, req, ack)| (label.to_string(), req, ack))
                .collect();
            metrics::compute(&metrics::MetricsInputs {
                family,
                scope: &handles.scope,
                dump,
                watches: &watches,
                sent: &sent,
                received: &received,
                in_use,
                window,
                clock_uw: clock_power.iter().map(|(_, p)| p).sum(),
                events: sim.events_processed(),
            })
        })
    } else {
        None
    };
    let trace = if opts.trace == TraceMode::Off { None } else { dump };

    Ok(LinkRun {
        family,
        spec,
        cfg: cfg.clone(),
        sent,
        received,
        in_use,
        window,
        sim_power,
        clock_power,
        area,
        scope: handles.scope,
        events: sim.events_processed(),
        integrity,
        profile,
        trace,
        recovery: probes.as_ref().map(|p| p.collect(&sim)),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::worst_case_pattern;
    use crate::LinkSpec;

    fn paper(family: LinkFamily) -> LinkSpec {
        LinkSpec::paper(family)
    }

    #[test]
    fn paper_protocol_four_flits_at_100mhz() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let run = run_spec(&paper(LinkFamily::Sync), &cfg, &words, &MeasureOptions::default())
            .expect("clean run");
        assert_eq!(run.received_words(), words);
        // 4 flits over a pipeline: in-use time is a handful of cycles,
        // the same order as the paper's ≈70 ns at 100 MHz.
        let ns = run.in_use.as_ns();
        assert!((40.0..=120.0).contains(&ns), "in-use {ns} ns out of range");
        assert!(run.window > run.in_use);
        assert!(run.total_power_uw() > 0.0);
        // Untraced runs retain no observability payload …
        assert!(run.trace.is_none());
        assert!(run.metrics().is_none());
        // … but the kernel profile always comes along for free.
        assert!(run.profile.commits > 0);
        assert_eq!(run.profile.events, run.events);
    }

    #[test]
    fn block_power_sums_to_total() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let run = run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &MeasureOptions::default())
            .expect("clean run");
        let bp = run.block_power();
        let sum = bp.conv_uw + bp.serdes_uw + bp.buffers_uw + bp.other_uw;
        assert!(
            (sum - bp.total_uw).abs() < 1e-6 * bp.total_uw.max(1.0),
            "blocks {sum} vs total {}",
            bp.total_uw
        );
    }

    #[test]
    fn area_reported_per_link() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(2, 32);
        let run = run_spec(&paper(LinkFamily::PerWord), &cfg, &words, &MeasureOptions::default())
            .expect("clean run");
        assert!(run.area_um2() > 1000.0, "area {} implausibly small", run.area_um2());
    }

    #[test]
    fn bad_config_is_a_config_error_not_a_panic() {
        let cfg = LinkConfig { slice_width: 5, ..Default::default() };
        let err = run_family(LinkFamily::PerTransfer, &cfg, None, &[1], &MeasureOptions::default())
            .expect_err("misconfigured");
        assert!(matches!(
            err,
            RunFailure::Config(ConfigError::SliceNotDividing { slice: 5, flit: 32 })
        ));
    }

    #[test]
    fn bad_spec_is_a_spec_error_with_a_source() {
        use std::error::Error as _;
        let err: RunFailure = crate::LinkSpec::builder()
            .word_width(65)
            .build()
            .map_err(RunFailure::from)
            .expect_err("invalid spec");
        assert!(matches!(err, RunFailure::Spec(SpecError::WordWidth { width: 65 })));
        let src = err.source().expect("Spec failures chain to the typed SpecError");
        assert!(src.downcast_ref::<SpecError>().is_some());
    }

    #[test]
    fn bad_usage_is_a_config_error() {
        let opts = MeasureOptions::default().with_usage(0.0);
        let err = run_spec(&paper(LinkFamily::Sync), &LinkConfig::default(), &[1], &opts)
            .expect_err("usage 0 rejected");
        assert!(matches!(err, RunFailure::Config(ConfigError::UsageOutOfRange { .. })));
    }

    #[test]
    fn traced_run_retains_a_dump() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(2, 32);
        let opts = MeasureOptions::default().with_trace(TraceMode::Full);
        let run = run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &opts).expect("clean run");
        let dump = run.trace.as_ref().expect("trace retained");
        assert!(!dump.records.is_empty());
        assert!(!dump.signals.is_empty());
        // Metrics were not requested.
        assert!(run.metrics().is_none());
    }

    #[test]
    fn ring_trace_bounds_retention() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(2, 32);
        let opts = MeasureOptions::default().with_trace(TraceMode::Ring(64));
        let run = run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &opts).expect("clean run");
        let dump = run.trace.as_ref().expect("trace retained");
        assert_eq!(dump.records.len(), 64);
        // The ring keeps the tail: records stay in commit order.
        for pair in dump.records.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn run_failures_chain_their_sources() {
        use std::error::Error as _;
        let cfg = LinkConfig { slice_width: 5, ..Default::default() };
        let err = run_family(LinkFamily::PerTransfer, &cfg, None, &[1], &MeasureOptions::default())
            .expect_err("misconfigured");
        let src = err.source().expect("Config failures chain to the typed ConfigError");
        assert!(src.downcast_ref::<ConfigError>().is_some());
        assert!(src.source().is_none(), "ConfigError is the end of the chain");
        // A fault plan naming a bogus signal chains to the kernel error.
        let opts = MeasureOptions::default().with_fault_plan(sal_des::FaultPlan::new(1).glitch(
            "link.no_such_signal",
            Time::from_ns(5),
            Time::from_ps(100),
            1,
        ));
        let err = run_spec(&paper(LinkFamily::PerTransfer), &LinkConfig::default(), &[1, 2], &opts)
            .expect_err("unknown fault target");
        assert!(matches!(err, RunFailure::Fault(_)));
        assert!(err.source().expect("chained").downcast_ref::<SimError>().is_some());
    }

    #[test]
    fn watchdog_horizon_bounds_a_run() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        // A budget far too small for even one word: the event-limit
        // watchdog fires and the run comes back as a deadlock.
        let opts = MeasureOptions::default().with_watchdog_horizon(2_000);
        let err = run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &opts)
            .expect_err("budget exceeded");
        assert!(matches!(err, RunFailure::Deadlock { .. }));
        // The default (None) leaves the kernel limit alone.
        run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &MeasureOptions::default())
            .expect("clean run under the kernel default");
    }

    #[test]
    fn protected_run_reports_quiet_recovery_counts() {
        use crate::ProtectionMode;
        let words = worst_case_pattern(4, 32);
        let r = run_spec(
            &paper(LinkFamily::PerTransfer),
            &LinkConfig::default(),
            &words,
            &MeasureOptions::default(),
        )
        .expect("clean run");
        assert!(r.recovery.is_none(), "no probes on an unprotected link");
        let spec = LinkSpec::builder().protection(ProtectionMode::Crc8).build().unwrap();
        let r = run_spec(&spec, &LinkConfig::default(), &words, &MeasureOptions::default())
            .expect("clean run");
        let rec = r.recovery.expect("protected runs carry recovery counts");
        assert!(rec.is_quiet(), "fault-free run should need no recovery: {rec}");
        assert!(r.integrity.is_clean());
    }

    #[test]
    fn metrics_only_run_skips_the_dump() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(2, 32);
        let opts = MeasureOptions::default().with_metrics();
        let run = run_spec(&paper(LinkFamily::PerTransfer), &cfg, &words, &opts).expect("clean run");
        assert!(run.trace.is_none());
        let m = run.metrics().expect("metrics computed");
        assert_eq!(m.link, "I2");
        assert!(!m.handshakes.is_empty());
    }
}
