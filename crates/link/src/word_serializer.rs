//! The word-level-acknowledgement serializer (paper Fig 8a, link I3).
//!
//! Instead of acknowledging every slice, the transmitter emits all
//! slices of a flit as a self-timed **burst**: a gated ring oscillator
//! ("5 back to back invertors" in the paper; stage count configurable)
//! paces one `VALID` strobe per slice, a one-hot multiplexer steps
//! through the slices, and a single acknowledge wire returns once per
//! *word* from the far end. The paper: "To adjust the frequency … the
//! number of invertors can be altered"; the default stage count is
//! chosen so a 4-slice burst takes ≈1.1 ns, the paper's measured
//! `Tburst`.

use sal_cells::{CellKind, CircuitBuilder};
use sal_des::{BundleParams, SignalId, Time};

use crate::LinkConfig;

/// Ports of the word-level serializer.
#[derive(Debug, Clone, Copy)]
pub struct WordSerializerPorts {
    /// Word-level acknowledge to the upstream interface.
    pub ackout: SignalId,
    /// Slice data to the wire.
    pub dout: SignalId,
    /// Source-synchronous slice strobe to the wire.
    pub valid: SignalId,
}

/// Builds the word-level serializer in scope `name`.
///
/// * `din`/`reqin` — upstream bundled-data word channel.
/// * `ack_back` — the per-word acknowledge wire from the receiver.
///
/// Control:
/// * `burst` (David cell) starts the ring oscillator on a new word and
///   stops it after the last slice;
/// * the slice token ring advances on each falling `VALID` edge;
/// * `done` samples the last token at each `VALID` fall, so it rises
///   exactly after the final slice; it is cleared asynchronously when
///   the upstream request withdraws;
/// * `ackout = done ∧ ack_back` — the upstream handshake completes
///   only when the receiver has taken the word.
pub fn build_word_serializer(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    reqin: SignalId,
    ack_back: SignalId,
    rstn: SignalId,
) -> WordSerializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    let slices: Vec<SignalId> = (0..k)
        .map(|i| b.slice(&format!("slice{i}"), din, i as u8 * cfg.slice_width, cfg.slice_width))
        .collect();

    // Burst control: set on a fresh request, cleared when done.
    let done = b.input("done", 1);
    let ndone = b.inv("ndone", done);
    let start = b.and2("start", reqin, ndone);
    let burst = b.david_cell("burst", start, done, Some(rstn), false);

    // Self-timed slice pacing. VALID is gated by ¬done as well as the
    // burst flag: `done` asserts a short flip-flop delay after the
    // last slice's strobe falls, cutting the strobe path off *before*
    // the free-running oscillator's next rising edge — the burst
    // flag's own shutdown (through the start gate and the David cell)
    // is a gate slower than the oscillator half-period. This is the
    // paper's "timing of the VALID signal … can also be tuned"
    // robustness knob (§IV).
    // More slices deepen the select multiplexer's OR tree, so the
    // burst must be paced slower for the data to settle between
    // strobes — the knob the paper describes as altering the number
    // (or sizing) of the ring's inverters.
    let mut levels: usize = 0;
    let mut n = k;
    while n > 1 {
        n = n.div_ceil(4);
        levels += 1;
    }
    let min_stages = 13 + 4 * (levels.saturating_sub(1));
    let stages = cfg.osc_stages.max(min_stages) | 1;
    let osc = b.ring_oscillator_stages("osc", burst, stages);
    let valid_core = b.and3("valid", burst, osc, ndone);
    let nvalid = b.inv("nvalid", valid_core);
    // The exported strobe trails the internal one by a short matched
    // delay: the slice mux settles on the strobe's *previous* fall, but
    // the first slice of a burst races the strobe out of the same
    // launch event, and the receiver's shift register needs data valid
    // strictly before its clock. Tuning VALID is the paper's §IV knob.
    let valid = b.buf_chain("valid_dly", valid_core, 3);

    // Static-timing launch point. The slice data is launched by the
    // strobe's *previous falling* edge (the token ring advances on
    // `nvalid`), so relative to the next rising `valid_core` edge the
    // data has a head start of one oscillator half-period — `stages`
    // inverter delays.
    let inv_delay = b.library().params(CellKind::Inv).delay;
    let half_period = Time::from_fs(inv_delay.as_fs() * stages as u64);
    b.sim().register_bundle_with(
        name,
        valid_core,
        half_period,
        BundleParams { word_width: u16::from(cfg.flit_width), serial_ratio: k as u16 },
    );

    // Slice select ring, advanced at each VALID fall.
    let tokens = b.ring_counter("sel", nvalid, Some(rstn), k);
    let dout = b.onehot_mux("dout", &tokens, &slices);

    // Word-complete: sample the last token at each VALID fall; held in
    // reset while no request is pending (asynchronous return to zero).
    let done_rstn = b.and2("done_rstn", rstn, reqin);
    b.dff_into("done_ff", done, tokens[k - 1], nvalid, Some(done_rstn));

    // Upstream acknowledge gated on the receiver's word acknowledge.
    let ackout = b.and2("ackout", done, ack_back);

    b.pop_scope();
    WordSerializerPorts { ackout, dout, valid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{attach_producer, worst_case_pattern, HsProducer};
    use sal_des::{Component, Ctx, Simulator, Time, Value};
    use sal_tech::St012Library;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A behavioural word-level receiver: counts VALID strobes,
    /// records each slice, raises ack_back after the last slice of
    /// each word, drops it at the next burst's first strobe.
    struct WordRx {
        valid: SignalId,
        data: SignalId,
        ack_back: SignalId,
        k: usize,
        count: usize,
        prev_valid: bool,
        slices: Rc<RefCell<Vec<(Time, u64)>>>,
    }

    impl Component for WordRx {
        fn on_input(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read(self.valid).is_high();
            let rising = v && !self.prev_valid;
            self.prev_valid = v;
            if rising {
                let d = ctx.read(self.data).to_u64().unwrap_or(u64::MAX);
                let now = ctx.now();
                self.slices.borrow_mut().push((now, d));
                self.count += 1;
                if self.count.is_multiple_of(self.k) {
                    ctx.drive(self.ack_back, Value::one(1), Time::from_ps(300));
                } else if self.count % self.k == 1 {
                    ctx.drive(self.ack_back, Value::zero(1), Time::from_ps(50));
                }
            }
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
            ctx.drive(self.ack_back, Value::zero(1), Time::ZERO);
        }
    }

    fn run_ser(cfg: &LinkConfig, words: Vec<u64>) -> Vec<u64> {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let ack_back = b.input("ack_back", 1);
        let ports = build_word_serializer(&mut b, "wser", cfg, din, reqin, ack_back, rstn);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        let slices = Rc::new(RefCell::new(Vec::new()));
        let rx = WordRx {
            valid: ports.valid,
            data: ports.dout,
            ack_back,
            k: cfg.slices(),
            count: 0,
            prev_valid: false,
            slices: slices.clone(),
        };
        let id = sim.add_component("rx", rx, &[ports.valid]);
        sim.connect_driver(id, ack_back).unwrap();
        sim.schedule_wake(id, Time::ZERO);
        let (p, _) = HsProducer::new(reqin, din, ports.ackout, cfg.flit_width, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        sim.run_until(Time::from_us(1)).unwrap();
        let seen = slices.borrow();
        let k = cfg.slices();
        seen.chunks(k)
            .filter(|c| c.len() == k)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &(_, s))| acc | (s << (i as u8 * cfg.slice_width)))
            })
            .collect()
    }

    #[test]
    fn bursts_carry_whole_words() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        assert_eq!(run_ser(&cfg, words.clone()), words);
    }

    #[test]
    fn burst_duration_matches_paper_tburst() {
        // 4 slices spaced by the ring-oscillator period: the paper
        // measures Tburst ≈ 1.1 ns. Check the strobe timing directly.
        let cfg = LinkConfig::default();
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", 32);
        let reqin = b.input("reqin", 1);
        let ack_back = b.input("ack_back", 1);
        let ports = build_word_serializer(&mut b, "wser", &cfg, din, reqin, ack_back, rstn);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))]);
        sim.stimulus(ack_back, &[(Time::ZERO, Value::zero(1))]);
        sim.stimulus(din, &[(Time::ZERO, Value::from_u64(32, 0xA5A5_A5A5))]);
        sim.stimulus(reqin, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))]);
        let edges = Rc::new(RefCell::new(Vec::new()));
        let e2 = edges.clone();
        sim.monitor("vmon", ports.valid, move |t, v| {
            if v.is_high() {
                e2.borrow_mut().push(t);
            }
        });
        sim.run_until(Time::from_ns(10)).unwrap();
        let e = edges.borrow();
        assert_eq!(e.len(), 4, "expected exactly 4 VALID strobes, got {}", e.len());
        let tburst = e[3] - e[0] + (e[1] - e[0]); // 4 slice periods
        let ns = tburst.as_ns();
        assert!(
            (0.8..=1.5).contains(&ns),
            "Tburst {ns:.2} ns outside the paper's ≈1.1 ns ballpark"
        );
    }

    #[test]
    fn sixteen_to_four_bit_burst() {
        let cfg = LinkConfig {
            flit_width: 16,
            slice_width: 4,
            ..LinkConfig::default()
        };
        let words = vec![0xBEEF, 0x1234, 0xFFFF, 0x0001];
        assert_eq!(run_ser(&cfg, words.clone()), words);
    }
}
