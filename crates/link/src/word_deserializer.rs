//! The word-level-acknowledgement deserializer (paper Fig 8b, link I3).
//!
//! A shift-register receiver: every `VALID` strobe shifts the incoming
//! slice into an `m/n`-deep word-wide shift register, while a single
//! '1' walks down a one-bit shift register of the same length. When
//! the '1' reaches the end the whole word is present and `REQOUT` is
//! raised to the async→sync interface; the interface's acknowledge
//! clears the pulse register (removing `REQOUT`) and sets the per-word
//! acknowledge wire back to the transmitter, which is released again
//! by the first strobe of the next burst.

use sal_cells::CircuitBuilder;
use sal_des::{SignalId, Value};

use crate::LinkConfig;

/// Ports of the word-level deserializer.
#[derive(Debug, Clone, Copy)]
pub struct WordDeserializerPorts {
    /// Rebuilt word to the downstream interface.
    pub dout: SignalId,
    /// Word-level request downstream.
    pub reqout: SignalId,
    /// Per-word acknowledge wire back to the transmitter.
    pub ack_back: SignalId,
}

/// Builds the word-level deserializer in scope `name`.
///
/// * `din`/`valid` — slice data and strobe from the wire.
/// * `ackin` — word acknowledge from the async→sync interface.
pub fn build_word_deserializer(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    valid: SignalId,
    ackin: SignalId,
    rstn: SignalId,
) -> WordDeserializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    // Data shift register: slice 0 arrives first and ends in the last
    // stage, so the last stage holds the word's low bits.
    // Static-timing capture: each strobe edge clocks `din` into the
    // shift register, so the slice must be stable before `valid`.
    b.sim().register_capture(din, valid);
    let stages = b.shift_register("sh", din, valid, Some(rstn), k);
    let ordered: Vec<SignalId> = stages.iter().rev().copied().collect();
    let dout = b.concat("dout", &ordered);

    // One-bit pulse shift register, cleared by the acknowledge. The
    // clear is a one-shot pulse on the acknowledge's *rising* edge
    // (edge detector: ack ∧ ¬ack-delayed): an interface that holds its
    // acknowledge high for a long time must not wipe the next word's
    // arriving pulses.
    let one = b.tie("one", Value::one(1));
    let nack = b.inv("nack", ackin);
    let ack_d = b.buf_chain("ack_d", ackin, 4);
    let nack_d = b.inv("nack_d", ack_d);
    let clear_pulse = b.and2("clear_pulse", ackin, nack_d);
    let nclear = b.inv("nclear", clear_pulse);
    let p_rstn = b.and2("p_rstn", rstn, nclear);
    let pulses = b.shift_register("p", one, valid, Some(p_rstn), k);
    // Gate the request on the acknowledge having returned to zero, so
    // a new word arriving while a slow interface still holds the
    // previous acknowledge high does not violate the four-phase
    // protocol (request must only rise when acknowledge is low).
    //
    // `served` closes a delay-sensitive window: between the
    // acknowledge's return to zero (interface-paced) and the pulse
    // register's actual clearing (our own reset path), `pulses[k-1]`
    // is still high and the request would re-rise for a word the
    // interface already took — a duplicate delivery. The guard is set
    // with the clear one-shot and released only once the pulse
    // register is visibly empty, making the handoff insensitive to
    // how slow the clear path is relative to the interface.
    let npulse = b.inv("npulse", pulses[k - 1]);
    let served = b.david_cell("served", clear_pulse, npulse, Some(rstn), false);
    let nserved = b.inv("nserved", served);
    let reqout = b.and3("reqout", pulses[k - 1], nack, nserved);

    // Word acknowledge back to the transmitter: set by the interface
    // taking the word (the acknowledge's rising edge — the level may
    // stay high long into the next burst and must not re-trigger),
    // cleared by the next burst's first strobe.
    let ack_back = b.david_cell("ack_back", clear_pulse, valid, Some(rstn), false);

    b.pop_scope();
    WordDeserializerPorts { dout, reqout, ack_back }
}

/// Builds the **demux-style** word receiver: a one-hot token ring
/// advanced at each strobe fall selects which slice register latches,
/// so only one register switches per strobe (the alternative the
/// paper's Fig 14 discussion compares the shift register against).
pub fn build_word_deserializer_demux(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    valid: SignalId,
    ackin: SignalId,
    rstn: SignalId,
) -> WordDeserializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    // Slice-select ring advanced at each strobe fall; slice i latches
    // while strobe ∧ token_i.
    let nvalid = b.inv("nvalid", valid);
    let tokens = b.ring_counter("sel", nvalid, Some(rstn), k);
    let regs: Vec<SignalId> = (0..k)
        .map(|i| {
            let le = b.and2(&format!("le{i}"), valid, tokens[i]);
            // Static-timing capture: the selected latch closes on the
            // strobe fall; the slice must be there first.
            b.sim().register_capture(din, le);
            b.dlatch(&format!("reg{i}"), din, le, None)
        })
        .collect();
    let dout = b.concat("dout", &regs);

    // Word-complete flag: sample the last token at each strobe fall;
    // cleared by a one-shot pulse on the interface acknowledge.
    let ack_d = b.buf_chain("ack_d", ackin, 4);
    let nack_d = b.inv("nack_d", ack_d);
    let clear_pulse = b.and2("clear_pulse", ackin, nack_d);
    let nclear = b.inv("nclear", clear_pulse);
    let done_rstn = b.and2("done_rstn", rstn, nclear);
    let done = b.dff("done", tokens[k - 1], nvalid, Some(done_rstn));
    let nack = b.inv("nack", ackin);
    // Same served guard as the shift-register receiver: `done` clears
    // through our (possibly slow) reset path while the interface's
    // acknowledge returns to zero at its own pace — without the guard
    // the request re-rises for an already-taken word.
    let ndone = b.inv("ndone", done);
    let served = b.david_cell("served", clear_pulse, ndone, Some(rstn), false);
    let nserved = b.inv("nserved", served);
    let reqout = b.and3("reqout", done, nack, nserved);

    let ack_back = b.david_cell("ack_back", clear_pulse, valid, Some(rstn), false);

    b.pop_scope();
    WordDeserializerPorts { dout, reqout, ack_back }
}

/// Builds the **early-acknowledge** word receiver — the paper's future
/// work ("further improvements to the upper bound throughput could be
/// achieved by earlier acknowledging"): the rebuilt word is copied
/// into a holding register the moment the last slice arrives and the
/// per-word acknowledge returns immediately, so the transmitter's next
/// burst overlaps the receiver's interface handoff. Backpressure is
/// preserved: if the holding register is still occupied, the copy —
/// and therefore the acknowledge — waits.
pub fn build_word_deserializer_early(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    valid: SignalId,
    ackin: SignalId,
    rstn: SignalId,
) -> WordDeserializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    // Shift-register front end, exactly as the baseline Fig 8b.
    b.sim().register_capture(din, valid);
    let stages = b.shift_register("sh", din, valid, Some(rstn), k);
    let ordered: Vec<SignalId> = stages.iter().rev().copied().collect();
    let word_raw = b.concat("word_raw", &ordered);

    // Pulse register marking word arrival; cleared when the word is
    // copied into the holding register (NOT by the interface ack).
    let one = b.tie("one", sal_des::Value::one(1));
    let hold_full = b.input("hold_full", 1);
    let hold_free = b.inv("hold_free", hold_full);
    let copy_clr = b.input("copy_clr", 1);
    let ncopy_clr = b.inv("ncopy_clr", copy_clr);
    let p_rstn = b.and2("p_rstn", rstn, ncopy_clr);
    let pulses = b.shift_register("p", one, valid, Some(p_rstn), k);

    // Copy window: word present and the holding register free.
    let copy = b.and2("copy", pulses[k - 1], hold_free);
    let dout = b.dlatch("hold", word_raw, copy, None);
    // Delayed copy closes the loop: clears the pulse register (ending
    // the copy window) and marks the holding register occupied.
    let copy_d = b.buf_chain("copy_d", copy, 3);
    b.buf_into("copy_clr_drv", copy_clr, copy_d);

    // Holding-register occupancy: set by the copy, cleared by a
    // one-shot on the interface acknowledge.
    let ack_d = b.buf_chain("ack_d", ackin, 4);
    let nack_d = b.inv("nack_d", ack_d);
    let took = b.and2("took", ackin, nack_d);
    b.david_cell_into("hold_sr", hold_full, copy_d, took, Some(rstn), false);

    // Downstream handshake from the holding register, with the served
    // guard (see the shift-register receiver): the request must not
    // re-rise between the acknowledge's fall and `hold_full` actually
    // clearing through the David cell.
    let nack = b.inv("nack", ackin);
    let served = b.david_cell("served", took, hold_free, Some(rstn), false);
    let nserved = b.inv("nserved", served);
    let reqout = b.and3("reqout", hold_full, nack, nserved);

    // EARLY acknowledge: returned at the copy, not at the interface
    // handshake; cleared by the next burst's first strobe.
    let ack_back = b.david_cell("ack_back", copy_d, valid, Some(rstn), false);

    b.pop_scope();
    WordDeserializerPorts { dout, reqout, ack_back }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{attach_consumer, attach_producer, HsConsumer, HsProducer};
    use crate::word_serializer::build_word_serializer;
    use sal_des::{Simulator, Time};
    use sal_tech::St012Library;

    type BuildRx = fn(
        &mut CircuitBuilder<'_>,
        &str,
        &LinkConfig,
        SignalId,
        SignalId,
        SignalId,
        SignalId,
    ) -> WordDeserializerPorts;

    /// Word serializer wired straight into a word receiver variant,
    /// with a handshake consumer standing in for the async→sync
    /// interface.
    fn round_trip_with(
        build_rx: BuildRx,
        cfg: &LinkConfig,
        words: Vec<u64>,
        ack_delay: Time,
    ) -> Vec<u64> {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let ack_back_wire = b.input("ack_back", 1);
        let ser = build_word_serializer(&mut b, "wser", cfg, din, reqin, ack_back_wire, rstn);
        let ackin = b.input("ackin", 1);
        let des = build_rx(&mut b, "wdes", cfg, ser.dout, ser.valid, ackin, rstn);
        b.buf_into("ab_loop", ack_back_wire, des.ack_back);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        let (p, _) = HsProducer::new(reqin, din, ser.ackout, cfg.flit_width, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(des.reqout, des.dout, ackin);
        let c = c.with_ack_delay(ack_delay);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_us(2)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        got
    }

    fn round_trip(cfg: &LinkConfig, words: Vec<u64>, ack_delay: Time) -> Vec<u64> {
        round_trip_with(build_word_deserializer, cfg, words, ack_delay)
    }

    #[test]
    fn word_round_trip_worst_case() {
        let cfg = LinkConfig::default();
        let words = crate::testbench::worst_case_pattern(4, 32);
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(60)), words);
    }

    #[test]
    fn word_round_trip_many() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> =
            (0..24).map(|i| (0x0F0F_0F0Fu64.wrapping_add(i * 0x0101_0101)) & 0xFFFF_FFFF).collect();
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(60)), words);
    }

    #[test]
    fn slow_interface_throttles_words() {
        let cfg = LinkConfig::default();
        let words = vec![0x1111_2222, 0x3333_4444, 0x5555_6666];
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ns(15)), words);
    }

    #[test]
    fn two_slice_words() {
        let cfg = LinkConfig { slice_width: 16, ..LinkConfig::default() };
        let words = vec![0xFACE_B00C, 0x0BAD_F00D];
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(60)), words);
    }

    #[test]
    fn demux_receiver_round_trip() {
        let cfg = LinkConfig::default();
        let words = crate::testbench::worst_case_pattern(6, 32);
        assert_eq!(
            round_trip_with(build_word_deserializer_demux, &cfg, words.clone(), Time::from_ps(60)),
            words
        );
    }

    #[test]
    fn demux_receiver_tolerates_slow_interface() {
        let cfg = LinkConfig::default();
        let words = vec![0x0102_0304, 0x0506_0708, 0x090A_0B0C];
        assert_eq!(
            round_trip_with(build_word_deserializer_demux, &cfg, words.clone(), Time::from_ns(12)),
            words
        );
    }

    #[test]
    fn early_ack_receiver_round_trip() {
        let cfg = LinkConfig::default();
        let words = crate::testbench::worst_case_pattern(6, 32);
        assert_eq!(
            round_trip_with(build_word_deserializer_early, &cfg, words.clone(), Time::from_ps(60)),
            words
        );
    }

    #[test]
    fn early_ack_receiver_backpressures_on_full_holding_register() {
        // A very slow interface: the holding register stays full, the
        // copy waits, the acknowledge is withheld, nothing is lost.
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (1..=5).map(|i| i * 0x1111_1111).collect();
        assert_eq!(
            round_trip_with(build_word_deserializer_early, &cfg, words.clone(), Time::from_ns(20)),
            words
        );
    }

    #[test]
    fn early_ack_improves_word_cycle_time() {
        // Measure the spacing between word requests at the receiver:
        // with early acknowledgement the next burst overlaps the
        // interface handoff, so words arrive closer together.
        let spacing = |build_rx: BuildRx| -> f64 {
            let cfg = LinkConfig::default();
            let mut sim = Simulator::new();
            let lib = St012Library::default();
            let mut b = CircuitBuilder::new(&mut sim, &lib);
            let rstn = b.input("rstn", 1);
            let din = b.input("din", cfg.flit_width);
            let reqin = b.input("reqin", 1);
            let ack_back_wire = b.input("ack_back", 1);
            let ser =
                build_word_serializer(&mut b, "wser", &cfg, din, reqin, ack_back_wire, rstn);
            let ackin = b.input("ackin", 1);
            let des = build_rx(&mut b, "wdes", &cfg, ser.dout, ser.valid, ackin, rstn);
            b.buf_into("ab_loop", ack_back_wire, des.ack_back);
            b.finish();
            sim.stimulus(
                rstn,
                &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
            );
            let words: Vec<u64> = (0..12).map(|i| (i * 0x0808_0404) & 0xFFFF_FFFF).collect();
            let n = words.len();
            let (p, _) = HsProducer::new(reqin, din, ser.ackout, cfg.flit_width, words);
            attach_producer(&mut sim, "prod", p, Time::from_ns(1));
            // Interface with a realistic ~0.5 ns turnaround.
            let (c, rx) = HsConsumer::new(des.reqout, des.dout, ackin);
            let c = c.with_ack_delay(Time::from_ps(500));
            attach_consumer(&mut sim, "cons", c, Time::ZERO);
            sim.run_until(Time::from_us(2)).unwrap();
            let log = rx.borrow();
            assert_eq!(log.len(), n, "transfer incomplete");
            let t0 = log[1].0;
            let t1 = log[n - 1].0;
            (t1 - t0).as_ns() / (n - 2) as f64
        };
        let base = spacing(build_word_deserializer);
        let early = spacing(build_word_deserializer_early);
        assert!(
            early < base * 0.9,
            "early ack should shorten the word cycle: {early:.2} vs {base:.2} ns"
        );
    }
}