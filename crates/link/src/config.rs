//! Link configuration.

use sal_des::Time;

/// Parameters shared by all three link implementations.
///
/// The defaults are the paper's experimental setup: 32-bit flits
/// serialized to 8 bits, 4 buffers along the wires, a 4-deep FIFO in
/// each clock-domain interface, and a 1 000 µm switch-to-switch wire.
///
/// # Examples
///
/// ```
/// use sal_link::LinkConfig;
/// let cfg = LinkConfig::default();
/// assert_eq!(cfg.slices(), 4);
/// assert_eq!(cfg.wires_sync(), 33);   // 32 data + valid
/// assert_eq!(cfg.wires_async(), 10);  // 8 data + req + ack
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkConfig {
    /// Flit (parallel word) width `m` in bits; 1..=64.
    pub flit_width: u8,
    /// Serial slice width `n` in bits; must divide `flit_width`.
    pub slice_width: u8,
    /// Number of buffer stations along the wires (pipeline registers
    /// for I1, latch-controller buffers for I2, inverter pairs for I3).
    pub buffers: u32,
    /// Total switch-to-switch wire length, µm.
    pub length_um: f64,
    /// Switch clock period (both ends share one slow clock).
    pub clk_period: Time,
    /// FIFO depth of each sync↔async interface (paper: 4, giving 8
    /// spaces along the whole link).
    pub fifo_depth: u8,
    /// Ring-oscillator stage count for the word-level serializer
    /// (odd, ≥3). Sets the burst slice spacing; the default yields the
    /// paper's Tburst ≈ 1.1 ns for a 4-slice burst.
    pub osc_stages: usize,
    /// Early word acknowledgement for I3 — the paper's stated future
    /// work ("further improvements … could be achieved by earlier
    /// acknowledging"): the receiver double-buffers the rebuilt word
    /// and acknowledges at last-slice arrival, overlapping the
    /// interface handoff with the next burst.
    pub early_word_ack: bool,
    /// Receiver datapath style for the word-level link (the comparison
    /// behind the paper's Fig 14 discussion of shift-register vs
    /// de-multiplexer deserializers).
    pub word_rx_style: WordRxStyle,
    /// Error detection over the serialized wire ([`ProtectionMode::Off`]
    /// by default). When enabled, the link widens its internal word
    /// with check bits, the receiver verifies every word and answers a
    /// corrupted one with a NACK, and the transmitter retransmits from
    /// the interface FIFO (which doubles as the replay register).
    pub protection: ProtectionMode,
    /// Bounded retransmission: after this many consecutive failures of
    /// the same word the transmitter gives up, completes the upstream
    /// handshake and lets the scoreboard account the word as lost —
    /// never silently corrupt. Must be ≥ `resync_retries`.
    pub max_retries: u8,
    /// Consecutive failures of the same word after which the
    /// transmitter executes a watchdog-triggered resync (a four-phase
    /// return-to-zero drain of every David-cell stage along the link)
    /// and, for I3, permanently degrades to per-transfer-ack pacing.
    pub resync_retries: u8,
    /// Base tap of the retransmission-timeout ripple counter, clocked
    /// by a dedicated gated ring oscillator: the first timeout fires
    /// after `2^timeout_tap` oscillator periods and each consecutive
    /// retry selects the next tap, doubling the horizon (exponential
    /// backoff from a counter-gated delay chain, not wall time).
    pub timeout_tap: u8,
}

/// Error-detection scheme layered over the serialized wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProtectionMode {
    /// No protection: the seed datapath, bit-identical netlist (the
    /// generator/checker/retry blocks are not built at all).
    Off,
    /// One parity bit per slice, carried on a widened slice (`n+1`
    /// wires): detects any odd number of flipped bits within a slice.
    Parity,
    /// CRC-8 (polynomial `x^8+x^2+x+1`, 0x07) over the word, appended
    /// as a trailing check byte serialized like data: detects all
    /// burst errors up to 8 bits and any odd number of bit flips.
    Crc8,
}

impl ProtectionMode {
    /// Short lowercase label (`"off"`, `"parity"`, `"crc"`) used in
    /// benchmark tables and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            ProtectionMode::Off => "off",
            ProtectionMode::Parity => "parity",
            ProtectionMode::Crc8 => "crc",
        }
    }
}

/// Word-level (I3) receiver datapath style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WordRxStyle {
    /// The paper's Fig 8b shift register: every stage latches on every
    /// strobe (more switching, simpler control).
    ShiftRegister,
    /// A one-hot de-multiplexer (like Fig 6b, strobe-clocked): only
    /// one slice register latches per strobe.
    Demux,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            flit_width: 32,
            slice_width: 8,
            buffers: 4,
            length_um: 1000.0,
            clk_period: Time::from_ns(10),
            fifo_depth: 4,
            osc_stages: 13,
            early_word_ack: false,
            word_rx_style: WordRxStyle::ShiftRegister,
            protection: ProtectionMode::Off,
            max_retries: 6,
            resync_retries: 2,
            timeout_tap: 6,
        }
    }
}

/// A structured description of the first inconsistency found in a
/// [`LinkConfig`] (or in the measurement options derived from it).
///
/// Every variant carries the offending values, so sweeps can match on
/// the *kind* of misconfiguration instead of parsing a message. The
/// [`Display`](std::fmt::Display) form keeps the historical one-line
/// messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `flit_width` outside `1..=64`.
    FlitWidth {
        /// The rejected flit width.
        width: u8,
    },
    /// `slice_width` outside `1..=flit_width`.
    SliceWidth {
        /// The rejected slice width.
        slice: u8,
        /// The flit width it was checked against.
        flit: u8,
    },
    /// `slice_width` does not divide `flit_width`.
    SliceNotDividing {
        /// The rejected slice width.
        slice: u8,
        /// The flit width it must divide.
        flit: u8,
    },
    /// Fewer than 2 slices per flit — nothing to serialize.
    TooFewSlices {
        /// The resulting slice count.
        slices: u8,
    },
    /// Interface FIFO depth below 2.
    FifoTooShallow {
        /// The rejected depth.
        depth: u8,
    },
    /// Ring-oscillator stage count even or below 3.
    BadOscStages {
        /// The rejected stage count.
        stages: usize,
    },
    /// Negative switch-to-switch wire length.
    NegativeLength {
        /// The rejected length, µm.
        length_um: f64,
    },
    /// A measurement usage factor outside `(0, 1]` (reported by the
    /// run entry point, not by [`LinkConfig::check`]).
    UsageOutOfRange {
        /// The rejected usage factor.
        usage: f64,
    },
    /// The word widened by check bits exceeds the 64-bit datapath.
    ProtectionTooWide {
        /// The protected width (`flit_width` + check bits).
        width: u32,
    },
    /// CRC-8 protection needs the slice width to divide the widened
    /// word (`flit_width + 8`), i.e. to divide 8.
    CrcSliceMismatch {
        /// The rejected slice width.
        slice: u8,
        /// The protected word width it must divide.
        protected: u8,
    },
    /// Protection combined with `early_word_ack`: the early ack
    /// completes the word handshake at last-slice arrival, *before*
    /// the checker can veto the word — detection would come too late
    /// to NACK, so the combination is rejected outright.
    ProtectionWithEarlyAck,
    /// Retry policy out of range: `resync_retries` must be in
    /// `1..=max_retries` and `timeout_tap` in `1..=20`.
    BadRetryPolicy {
        /// Configured give-up bound.
        max_retries: u8,
        /// Configured resync threshold.
        resync_retries: u8,
        /// Configured base timeout tap.
        timeout_tap: u8,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::FlitWidth { width } => {
                write!(f, "flit width must be 1..=64 (got {width})")
            }
            ConfigError::SliceWidth { slice, flit } => {
                write!(f, "slice width must be 1..=flit width (got {slice} of {flit})")
            }
            ConfigError::SliceNotDividing { slice, flit } => {
                write!(f, "slice width must divide flit width ({slice} does not divide {flit})")
            }
            ConfigError::TooFewSlices { slices } => {
                write!(f, "need at least 2 slices (got {slices})")
            }
            ConfigError::FifoTooShallow { depth } => {
                write!(f, "interface FIFO depth must be at least 2 (got {depth})")
            }
            ConfigError::BadOscStages { stages } => {
                write!(f, "ring oscillator needs an odd stage count >= 3 (got {stages})")
            }
            ConfigError::NegativeLength { length_um } => {
                write!(f, "negative wire length ({length_um} um)")
            }
            ConfigError::UsageOutOfRange { usage } => {
                write!(f, "usage must be in (0, 1] (got {usage})")
            }
            ConfigError::ProtectionTooWide { width } => {
                write!(f, "protected word width must be <= 64 (got {width})")
            }
            ConfigError::CrcSliceMismatch { slice, protected } => {
                write!(
                    f,
                    "CRC-8 protection needs the slice width to divide the widened word \
                     ({slice} does not divide {protected})"
                )
            }
            ConfigError::ProtectionWithEarlyAck => {
                write!(
                    f,
                    "protection is incompatible with early_word_ack (the early ack completes \
                     the handshake before the word is checked)"
                )
            }
            ConfigError::BadRetryPolicy { max_retries, resync_retries, timeout_tap } => {
                write!(
                    f,
                    "retry policy out of range (max_retries {max_retries}, resync_retries \
                     {resync_retries}, timeout_tap {timeout_tap}): need 1 <= resync_retries \
                     <= max_retries and 1 <= timeout_tap <= 20"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for sal_cells::BuildError {
    fn from(e: ConfigError) -> Self {
        sal_cells::BuildError::Config { message: e.to_string() }
    }
}

impl LinkConfig {
    /// Validates internal consistency: `Err` carries the first
    /// inconsistency found as a typed [`ConfigError`]. Never panics —
    /// sweeps probe unbuildable corners through this.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(self.flit_width >= 1 && self.flit_width <= 64) {
            return Err(ConfigError::FlitWidth { width: self.flit_width });
        }
        if !(self.slice_width >= 1 && self.slice_width <= self.flit_width) {
            return Err(ConfigError::SliceWidth {
                slice: self.slice_width,
                flit: self.flit_width,
            });
        }
        if !self.flit_width.is_multiple_of(self.slice_width) {
            return Err(ConfigError::SliceNotDividing {
                slice: self.slice_width,
                flit: self.flit_width,
            });
        }
        if self.flit_width / self.slice_width < 2 {
            return Err(ConfigError::TooFewSlices {
                slices: self.flit_width / self.slice_width,
            });
        }
        if self.fifo_depth < 2 {
            return Err(ConfigError::FifoTooShallow { depth: self.fifo_depth });
        }
        if !(self.osc_stages % 2 == 1 && self.osc_stages >= 3) {
            return Err(ConfigError::BadOscStages { stages: self.osc_stages });
        }
        if self.length_um < 0.0 {
            return Err(ConfigError::NegativeLength { length_um: self.length_um });
        }
        if self.protection != ProtectionMode::Off {
            let width = self.flit_width as u32 + self.check_bits() as u32;
            if width > 64 {
                return Err(ConfigError::ProtectionTooWide { width });
            }
            if self.protection == ProtectionMode::Crc8
                && !(self.flit_width + 8).is_multiple_of(self.slice_width)
            {
                return Err(ConfigError::CrcSliceMismatch {
                    slice: self.slice_width,
                    protected: self.flit_width + 8,
                });
            }
            if self.early_word_ack {
                return Err(ConfigError::ProtectionWithEarlyAck);
            }
            if !(1..=self.max_retries).contains(&self.resync_retries)
                || !(1..=20).contains(&self.timeout_tap)
            {
                return Err(ConfigError::BadRetryPolicy {
                    max_retries: self.max_retries,
                    resync_retries: self.resync_retries,
                    timeout_tap: self.timeout_tap,
                });
            }
        }
        Ok(())
    }

    /// Number of slices per flit (`m / n`).
    pub fn slices(&self) -> usize {
        (self.flit_width / self.slice_width) as usize
    }

    /// Wires between switches for the synchronous link I1:
    /// data + valid.
    pub fn wires_sync(&self) -> u32 {
        self.flit_width as u32 + 1
    }

    /// Wires between switches for the serialized asynchronous links
    /// I2/I3: slice data + request/valid forward + acknowledge back.
    /// Protection is physically honest about its wire cost: the slice
    /// may widen (parity) and the NACK-back + resync-forward wires are
    /// added.
    pub fn wires_async(&self) -> u32 {
        let base = self.inner_slice_width() as u32 + 2;
        match self.protection {
            ProtectionMode::Off => base,
            _ => base + 2, // + nack back, + resync forward
        }
    }

    /// Check bits appended to each word by the configured protection
    /// (0 when off, one per slice for parity, 8 for CRC-8).
    pub fn check_bits(&self) -> u8 {
        match self.protection {
            ProtectionMode::Off => 0,
            ProtectionMode::Parity => self.slices() as u8,
            ProtectionMode::Crc8 => 8,
        }
    }

    /// Width of the word actually serialized over the wire:
    /// `flit_width` plus [`LinkConfig::check_bits`].
    pub fn protected_width(&self) -> u8 {
        self.flit_width + self.check_bits()
    }

    /// Slice width carried per wire transfer once protection widens
    /// the word. Parity interleaves one check bit into every slice
    /// (`n+1`); CRC-8 appends a check byte serialized as ordinary
    /// trailing slices (`n`).
    pub fn inner_slice_width(&self) -> u8 {
        match self.protection {
            ProtectionMode::Parity => self.slice_width + 1,
            _ => self.slice_width,
        }
    }

    /// The configuration the serializer/deserializer core is built
    /// with: the protected word width and slice width, protection
    /// cleared (the core blocks are protection-agnostic — the
    /// generator, checker and retry blocks wrap around them).
    pub(crate) fn inner(&self) -> LinkConfig {
        LinkConfig {
            flit_width: self.protected_width(),
            slice_width: self.inner_slice_width(),
            protection: ProtectionMode::Off,
            ..self.clone()
        }
    }

    /// Length of one wire segment between adjacent buffer stations
    /// (the wire is divided into `buffers + 1` equal segments), µm.
    pub fn segment_um(&self) -> f64 {
        self.length_um / (self.buffers as f64 + 1.0)
    }

    /// The switch clock frequency in Hz.
    pub fn clk_hz(&self) -> f64 {
        self.clk_period.period_to_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_setup() {
        let c = LinkConfig::default();
        c.check().expect("default config is valid");
        assert_eq!(c.flit_width, 32);
        assert_eq!(c.slice_width, 8);
        assert_eq!(c.slices(), 4);
        assert_eq!(c.buffers, 4);
        assert_eq!(c.fifo_depth, 4);
    }

    #[test]
    fn wire_counts() {
        let c = LinkConfig::default();
        assert_eq!(c.wires_sync(), 33);
        assert_eq!(c.wires_async(), 10);
        let c16 = LinkConfig { flit_width: 16, slice_width: 4, ..c };
        assert_eq!(c16.wires_sync(), 17);
        assert_eq!(c16.wires_async(), 6);
    }

    #[test]
    fn segments() {
        let c = LinkConfig { buffers: 4, length_um: 1000.0, ..Default::default() };
        assert!((c.segment_um() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn bad_slice_width_rejected() {
        let err = LinkConfig { slice_width: 5, ..Default::default() }.check().unwrap_err();
        assert_eq!(err, ConfigError::SliceNotDividing { slice: 5, flit: 32 });
        assert!(err.to_string().contains("divide"));
    }

    #[test]
    fn unserialized_config_rejected() {
        let err = LinkConfig { slice_width: 32, ..Default::default() }.check().unwrap_err();
        assert_eq!(err, ConfigError::TooFewSlices { slices: 1 });
        assert!(err.to_string().contains("2 slices"));
    }

    #[test]
    fn protection_widths_and_wire_costs() {
        let c = LinkConfig::default();
        assert_eq!(c.check_bits(), 0);
        assert_eq!(c.protected_width(), 32);
        let p = LinkConfig { protection: ProtectionMode::Parity, ..c.clone() };
        p.check().expect("parity on the paper setup is valid");
        assert_eq!(p.check_bits(), 4);
        assert_eq!(p.protected_width(), 36);
        assert_eq!(p.inner_slice_width(), 9);
        assert_eq!(p.wires_async(), 13); // 9 data + req + ack + nack + resync
        let inner = p.inner();
        assert_eq!((inner.flit_width, inner.slice_width), (36, 9));
        assert_eq!(inner.slices(), 4);
        inner.check().expect("the widened core config is itself valid");
        let g = LinkConfig { protection: ProtectionMode::Crc8, ..c };
        g.check().expect("crc on the paper setup is valid");
        assert_eq!(g.protected_width(), 40);
        assert_eq!(g.inner_slice_width(), 8);
        assert_eq!(g.wires_async(), 12);
        assert_eq!(g.inner().slices(), 5); // the check byte rides as a 5th slice
    }

    #[test]
    fn bad_protection_configs_rejected() {
        let too_wide = LinkConfig {
            flit_width: 64,
            slice_width: 8,
            protection: ProtectionMode::Crc8,
            ..Default::default()
        };
        assert_eq!(too_wide.check().unwrap_err(), ConfigError::ProtectionTooWide { width: 72 });
        let mismatch = LinkConfig {
            flit_width: 32,
            slice_width: 16,
            protection: ProtectionMode::Crc8,
            ..Default::default()
        };
        assert_eq!(
            mismatch.check().unwrap_err(),
            ConfigError::CrcSliceMismatch { slice: 16, protected: 40 }
        );
        let bad_retry = LinkConfig {
            protection: ProtectionMode::Parity,
            resync_retries: 9,
            ..Default::default()
        };
        assert!(matches!(bad_retry.check().unwrap_err(), ConfigError::BadRetryPolicy { .. }));
        let early = LinkConfig {
            protection: ProtectionMode::Crc8,
            early_word_ack: true,
            ..Default::default()
        };
        assert_eq!(early.check().unwrap_err(), ConfigError::ProtectionWithEarlyAck);
        // The same retry fields are ignored while protection is off.
        LinkConfig { resync_retries: 9, ..Default::default() }
            .check()
            .expect("retry policy is irrelevant without protection");
    }

    #[test]
    fn config_error_threads_into_build_error() {
        let err = LinkConfig { fifo_depth: 1, ..Default::default() }.check().unwrap_err();
        assert_eq!(err, ConfigError::FifoTooShallow { depth: 1 });
        let build: sal_cells::BuildError = err.into();
        assert!(matches!(
            build,
            sal_cells::BuildError::Config { ref message } if message.contains("FIFO depth")
        ));
    }
}
