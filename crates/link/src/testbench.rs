//! Behavioural testbench components: asynchronous handshake drivers
//! and synchronous switch models.
//!
//! These model the paper's surrounding NoC switches and the stimulus
//! environment. They are *testbench* elements: they occupy no area and
//! burn no energy, so measurements only see the link under test.

use std::cell::RefCell;
use std::rc::Rc;

use sal_des::{CellClass, Component, ComponentId, Ctx, Logic, SignalId, Simulator, Time, Value};

/// A shared recording of `(time, word)` observations.
pub type Record = Rc<RefCell<Vec<(Time, u64)>>>;

/// Creates an empty [`Record`].
pub fn record() -> Record {
    Rc::new(RefCell::new(Vec::new()))
}

/// A four-phase bundled-data producer: drives `data` then raises
/// `req`, completing the return-to-zero handshake on `ack`, for each
/// queued word.
pub struct HsProducer {
    req: SignalId,
    data: SignalId,
    ack: SignalId,
    width: u8,
    words: Vec<u64>,
    next: usize,
    /// Margin between driving data and raising req (bundling).
    bundle: Time,
    /// Pause between completed handshakes (the paper's `Tnextflit`).
    gap: Time,
    state: ProducerState,
    sent: Record,
    /// When to start sending (idle levels are driven at t = 0 so the
    /// circuit is never exposed to undriven `X` control inputs).
    start: Time,
    initialized: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ProducerState {
    Idle,
    DataDriven,
    ReqHigh,
    WaitAckLow,
}

impl HsProducer {
    /// Creates a producer and returns it with its send log. Attach
    /// with [`attach_producer`].
    pub fn new(req: SignalId, data: SignalId, ack: SignalId, width: u8, words: Vec<u64>) -> (Self, Record) {
        let sent = record();
        (
            HsProducer {
                req,
                data,
                ack,
                width,
                words,
                next: 0,
                bundle: Time::from_ps(60),
                gap: Time::ZERO,
                state: ProducerState::Idle,
                sent: sent.clone(),
                start: Time::ZERO,
                initialized: false,
            },
            sent,
        )
    }

    /// Sets the pause inserted between words.
    pub fn with_gap(mut self, gap: Time) -> Self {
        self.gap = gap;
        self
    }
}

impl Component for HsProducer {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        match (self.state, ctx.read(self.ack).as_logic()) {
            (ProducerState::ReqHigh, Logic::One) => {
                ctx.drive(self.req, Value::zero(1), Time::from_ps(20));
                self.state = ProducerState::WaitAckLow;
            }
            (ProducerState::WaitAckLow, Logic::Zero) => {
                self.state = ProducerState::Idle;
                let gap = self.gap;
                ctx.wake_after(gap + Time::from_ps(1));
            }
            _ => {}
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        if !self.initialized {
            // Establish idle levels immediately (undriven X on a
            // request line would poison the asynchronous state cells).
            self.initialized = true;
            ctx.drive(self.req, Value::zero(1), Time::ZERO);
            let now = ctx.now();
            if self.start > now {
                ctx.wake_after(self.start - now);
                return;
            }
        }
        match self.state {
            ProducerState::Idle
                if self.next < self.words.len() => {
                    let w = self.words[self.next];
                    ctx.drive(self.data, Value::from_u64(self.width, w), Time::ZERO);
                    self.state = ProducerState::DataDriven;
                    ctx.wake_after(self.bundle);
                }
            ProducerState::DataDriven => {
                let w = self.words[self.next];
                self.next += 1;
                let now = ctx.now();
                self.sent.borrow_mut().push((now, w));
                ctx.drive(self.req, Value::one(1), Time::ZERO);
                self.state = ProducerState::ReqHigh;
            }
            _ => {}
        }
    }
}

/// Attaches a producer to the simulator, registering it as the driver
/// of its `req` and `data` signals. Idle levels are driven at t = 0;
/// sending begins at `start`.
pub fn attach_producer(
    sim: &mut Simulator,
    name: &str,
    mut p: HsProducer,
    start: Time,
) -> ComponentId {
    p.start = start;
    let req = p.req;
    let data = p.data;
    let ack = p.ack;
    let id = sim.add_component(name, p, &[ack]);
    sim.set_component_class(id, CellClass::Env);
    sim.connect_driver(id, req).expect("producer req already driven");
    sim.connect_driver(id, data).expect("producer data already driven");
    sim.schedule_wake(id, Time::ZERO);
    id
}

/// A four-phase bundled-data consumer: acknowledges each `req` after a
/// configurable latency and records the word seen on `data`.
pub struct HsConsumer {
    req: SignalId,
    data: SignalId,
    ack: SignalId,
    /// Delay from req edge to ack edge (models receiver readiness /
    /// deliberate stalling in backpressure tests).
    ack_delay: Time,
    received: Record,
}

impl HsConsumer {
    /// Creates a consumer and returns it with its receive log. Attach
    /// with [`attach_consumer`].
    pub fn new(req: SignalId, data: SignalId, ack: SignalId) -> (Self, Record) {
        let received = record();
        (
            HsConsumer { req, data, ack, ack_delay: Time::from_ps(40), received: received.clone() },
            received,
        )
    }

    /// Sets the request-to-acknowledge latency.
    pub fn with_ack_delay(mut self, d: Time) -> Self {
        self.ack_delay = d;
        self
    }
}

impl Component for HsConsumer {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.read(self.req).as_logic() {
            Logic::One => {
                if !ctx.read(self.ack).is_high() {
                    let v = ctx.read(self.data);
                    let now = ctx.now();
                    self.received
                        .borrow_mut()
                        .push((now, v.to_u64().unwrap_or(u64::MAX)));
                    ctx.drive(self.ack, Value::one(1), self.ack_delay);
                }
            }
            Logic::Zero => {
                ctx.drive(self.ack, Value::zero(1), self.ack_delay);
            }
            Logic::X => {}
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        // Initial kick: idle ack low.
        ctx.drive(self.ack, Value::zero(1), Time::ZERO);
    }
}

/// Attaches a consumer, registering it as the driver of `ack`.
pub fn attach_consumer(sim: &mut Simulator, name: &str, c: HsConsumer, start: Time) -> ComponentId {
    let req = c.req;
    let ack = c.ack;
    let _ = start;
    let id = sim.add_component(name, c, &[req]);
    sim.set_component_class(id, CellClass::Env);
    sim.connect_driver(id, ack).expect("consumer ack already driven");
    // Idle levels must be driven from t = 0 (see attach_producer).
    sim.schedule_wake(id, Time::ZERO);
    id
}

/// A synchronous switch output: presents flits on `flit`/`valid` and
/// advances on each rising clock edge where `valid && !stall`
/// (ready/valid elastic protocol, as between a NoC switch and the
/// paper's sync→async interface).
pub struct SyncFlitSource {
    clk: SignalId,
    stall: SignalId,
    flit: SignalId,
    valid: SignalId,
    width: u8,
    words: Vec<u64>,
    next: usize,
    presented: bool,
    prev_clk: Logic,
    /// Clock-to-output delay of the switch's output register.
    t_co: Time,
    sent: Record,
    /// Optional reset: the switch presents nothing while rstn is low.
    rstn: Option<SignalId>,
}

impl SyncFlitSource {
    /// Creates a source and its send log (a flit is logged at the edge
    /// where the interface accepts it). Attach with [`attach_sync_source`].
    pub fn new(
        clk: SignalId,
        stall: SignalId,
        flit: SignalId,
        valid: SignalId,
        width: u8,
        words: Vec<u64>,
    ) -> (Self, Record) {
        let sent = record();
        (
            SyncFlitSource {
                clk,
                stall,
                flit,
                valid,
                width,
                words,
                next: 0,
                presented: false,
                prev_clk: Logic::X,
                t_co: Time::from_ps(100),
                sent: sent.clone(),
                rstn: None,
            },
            sent,
        )
    }

    /// Makes the source honour an active-low reset: while `rstn` is
    /// low it presents nothing (a real switch does not drive flits
    /// into a link still in reset).
    pub fn with_rstn(mut self, rstn: SignalId) -> Self {
        self.rstn = Some(rstn);
        self
    }
}

impl Component for SyncFlitSource {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let clk = ctx.read(self.clk).as_logic();
        let rising = self.prev_clk == Logic::Zero && clk == Logic::One;
        self.prev_clk = clk;
        if !rising {
            return;
        }
        if let Some(rstn) = self.rstn {
            if !ctx.read(rstn).is_high() {
                ctx.drive(self.valid, Value::zero(1), self.t_co);
                self.presented = false;
                return;
            }
        }
        let stalled = ctx.read(self.stall).is_high();
        if self.presented && !stalled {
            // The word on the pins was accepted at this edge.
            let now = ctx.now();
            self.sent.borrow_mut().push((now, self.words[self.next]));
            self.next += 1;
            self.presented = false;
        }
        if !self.presented {
            if self.next < self.words.len() {
                let w = Value::from_u64(self.width, self.words[self.next]);
                ctx.drive(self.flit, w, self.t_co);
                ctx.drive(self.valid, Value::one(1), self.t_co);
                self.presented = true;
            } else {
                ctx.drive(self.valid, Value::zero(1), self.t_co);
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        ctx.drive(self.valid, Value::zero(1), Time::ZERO);
        ctx.drive(self.flit, Value::zero(self.width), Time::ZERO);
    }
}

/// Attaches a synchronous source, driving `flit` and `valid`.
pub fn attach_sync_source(
    sim: &mut Simulator,
    name: &str,
    s: SyncFlitSource,
    start: Time,
) -> ComponentId {
    let clk = s.clk;
    let flit = s.flit;
    let valid = s.valid;
    let _ = start;
    let id = sim.add_component(name, s, &[clk]);
    sim.set_component_class(id, CellClass::Env);
    sim.connect_driver(id, flit).expect("source flit already driven");
    sim.connect_driver(id, valid).expect("source valid already driven");
    sim.schedule_wake(id, Time::ZERO);
    id
}

/// A synchronous switch input: samples `flit` whenever `valid && !stall`
/// at a rising clock edge, optionally stalling according to a pattern.
pub struct SyncFlitSink {
    clk: SignalId,
    valid: SignalId,
    flit: SignalId,
    stall: SignalId,
    prev_clk: Logic,
    cycle: u64,
    stall_fn: Box<dyn FnMut(u64) -> bool>,
    received: Record,
}

impl SyncFlitSink {
    /// Creates an always-ready sink and its receive log. Attach with
    /// [`attach_sync_sink`].
    pub fn new(clk: SignalId, valid: SignalId, flit: SignalId, stall: SignalId) -> (Self, Record) {
        Self::with_stall_fn(clk, valid, flit, stall, Box::new(|_| false))
    }

    /// Creates a sink whose stall output on cycle `i` is `stall_fn(i)`.
    pub fn with_stall_fn(
        clk: SignalId,
        valid: SignalId,
        flit: SignalId,
        stall: SignalId,
        stall_fn: Box<dyn FnMut(u64) -> bool>,
    ) -> (Self, Record) {
        let received = record();
        (
            SyncFlitSink {
                clk,
                valid,
                flit,
                stall,
                prev_clk: Logic::X,
                cycle: 0,
                stall_fn,
                received: received.clone(),
            },
            received,
        )
    }
}

impl Component for SyncFlitSink {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let clk = ctx.read(self.clk).as_logic();
        let rising = self.prev_clk == Logic::Zero && clk == Logic::One;
        self.prev_clk = clk;
        if !rising {
            return;
        }
        let stalled = ctx.read(self.stall).is_high();
        if !stalled && ctx.read(self.valid).is_high() {
            let v = ctx.read(self.flit);
            let now = ctx.now();
            self.received.borrow_mut().push((now, v.to_u64().unwrap_or(u64::MAX)));
        }
        self.cycle += 1;
        let st = (self.stall_fn)(self.cycle);
        ctx.drive(self.stall, Value::from_bool(st), Time::from_ps(100));
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        ctx.drive(self.stall, Value::zero(1), Time::ZERO);
    }
}

/// Attaches a synchronous sink, driving its `stall` output.
pub fn attach_sync_sink(
    sim: &mut Simulator,
    name: &str,
    s: SyncFlitSink,
    start: Time,
) -> ComponentId {
    let clk = s.clk;
    let stall = s.stall;
    let _ = start;
    let id = sim.add_component(name, s, &[clk]);
    sim.set_component_class(id, CellClass::Env);
    sim.connect_driver(id, stall).expect("sink stall already driven");
    sim.schedule_wake(id, Time::ZERO);
    id
}

/// The paper's worst-case data pattern: alternating `0xA5A5A5A5` /
/// `0x5A5A5A5A` words "which exercise the data wires as much as
/// possible and give worst case data activity" (§V), truncated to the
/// requested width and repeated to `count` items.
pub fn worst_case_pattern(count: usize, width: u8) -> Vec<u64> {
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    (0..count)
        .map(|i| {
            if i % 2 == 0 {
                0xA5A5_A5A5_A5A5_A5A5 & mask
            } else {
                0x5A5A_5A5A_5A5A_5A5A & mask
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_pattern_alternates_and_masks() {
        let p = worst_case_pattern(4, 32);
        assert_eq!(p, vec![0xA5A5_A5A5, 0x5A5A_5A5A, 0xA5A5_A5A5, 0x5A5A_5A5A]);
        let p8 = worst_case_pattern(2, 8);
        assert_eq!(p8, vec![0xA5, 0x5A]);
        // Adjacent words toggle every bit — worst-case activity.
        assert_eq!((p[0] ^ p[1]).count_ones(), 32);
    }

    #[test]
    fn producer_to_consumer_direct() {
        // Wire a producer straight into a consumer: the handshake
        // protocol itself must deliver all words in order.
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        let data = sim.add_signal("data", 16);
        let words = vec![0xDEAD, 0xBEEF, 0x0101];
        let (p, _sent) = HsProducer::new(req, data, ack, 16, words.clone());
        attach_producer(&mut sim, "prod", p, Time::ZERO);
        let (c, received) = HsConsumer::new(req, data, ack);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_ns(100)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
    }

    #[test]
    fn producer_respects_slow_consumer() {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        let data = sim.add_signal("data", 8);
        let words = vec![1, 2, 3, 4];
        let (p, _) = HsProducer::new(req, data, ack, 8, words.clone());
        attach_producer(&mut sim, "prod", p, Time::ZERO);
        let (c, received) =
            HsConsumer::new(req, data, ack);
        let c = c.with_ack_delay(Time::from_ns(5));
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_ns(100)).unwrap();
        let times: Vec<Time> = received.borrow().iter().map(|&(t, _)| t).collect();
        assert_eq!(times.len(), 4);
        // Each word is paced by the consumer's 2 × 5 ns handshake.
        for pair in times.windows(2) {
            assert!(pair[1] - pair[0] >= Time::from_ns(10));
        }
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
    }

    #[test]
    fn sync_source_feeds_sync_sink_through_wires() {
        // Source drives flit/valid; sink samples them on the same clock.
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let ck = sim.add_component(
            "ck",
            sal_cells::ClockGen::new(clk, Time::from_ns(10)),
            &[],
        );
        sim.connect_driver(ck, clk).unwrap();
        sim.schedule_wake(ck, Time::ZERO);
        let flit = sim.add_signal("flit", 32);
        let valid = sim.add_signal("valid", 1);
        let stall = sim.add_signal("stall", 1);
        let words = worst_case_pattern(4, 32);
        let (src, sent) = SyncFlitSource::new(clk, stall, flit, valid, 32, words.clone());
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        let (snk, received) = SyncFlitSink::new(clk, valid, flit, stall);
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(Time::from_ns(100)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
        assert_eq!(sent.borrow().len(), 4);
    }

    #[test]
    fn sync_sink_stall_pattern_throttles() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let ck = sim.add_component(
            "ck",
            sal_cells::ClockGen::new(clk, Time::from_ns(10)),
            &[],
        );
        sim.connect_driver(ck, clk).unwrap();
        sim.schedule_wake(ck, Time::ZERO);
        let flit = sim.add_signal("flit", 8);
        let valid = sim.add_signal("valid", 1);
        let stall = sim.add_signal("stall", 1);
        let words = vec![1, 2, 3];
        let (src, _) = SyncFlitSource::new(clk, stall, flit, valid, 8, words.clone());
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        // Stall on every odd cycle: throughput halves but data intact.
        let (snk, received) =
            SyncFlitSink::with_stall_fn(clk, valid, flit, stall, Box::new(|c| c % 2 == 1));
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(Time::from_ns(200)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
    }
}
