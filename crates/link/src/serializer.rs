//! The per-transfer asynchronous serializer (paper Fig 6a).
//!
//! Splits an `m`-bit flit into `m/n` slices and sends each over an
//! `n`-bit channel with its own four-phase request/acknowledge
//! handshake. A one-hot sequencer (the paper's David-cell chain;
//! here a self-starting ring advanced by each completed handshake)
//! selects the slice; after the last slice the upstream word
//! handshake is acknowledged.

use sal_cells::CircuitBuilder;
use sal_des::{BundleParams, SignalId, Time};

use crate::LinkConfig;

/// Matched-delay buffer count covering the worst-case one-hot-mux
/// settling path for `k` inputs: flip-flop + AND + one OR level per
/// `ceil(log4 k)` of tree depth, with margin.
pub(crate) fn matched_delay_bufs(k: usize) -> usize {
    let mut n = k;
    let mut levels = 0;
    while n > 1 {
        n = n.div_ceil(4);
        levels += 1;
    }
    3 + 2 * levels.max(1)
}

/// Ports of the per-transfer serializer.
#[derive(Debug, Clone, Copy)]
pub struct SerializerPorts {
    /// Word-level acknowledge to the upstream interface.
    pub ackout: SignalId,
    /// Slice data to the wire.
    pub dout: SignalId,
    /// Slice request to the wire.
    pub reqout: SignalId,
}

/// Builds the serializer in its own scope.
///
/// * `din`/`reqin` — upstream bundled-data word channel (the
///   sync→async interface holds `din` stable for the whole word).
/// * `ackin` — per-slice acknowledge from the first wire buffer (or
///   the deserializer when the wire has no buffers).
///
/// Control structure:
/// * the slice token ring advances on each falling `ackin` edge (one
///   completed slice handshake);
/// * `done` (a David cell) is set when the **last** slice's
///   acknowledge arrives and cleared when the upstream request
///   withdraws, producing the word-level `ackout`;
/// * `reqout = reqin ∧ ¬ackin ∧ ¬done`, delayed through a matched
///   buffer chain so the freshly selected slice settles on `dout`
///   before the request reaches the receiver (the bundled-data
///   constraint).
pub fn build_serializer(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    reqin: SignalId,
    ackin: SignalId,
    rstn: SignalId,
) -> SerializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    // Slice views of the input word (pure wiring).
    let slices: Vec<SignalId> = (0..k)
        .map(|i| b.slice(&format!("slice{i}"), din, i as u8 * cfg.slice_width, cfg.slice_width))
        .collect();

    // Token ring advanced at the end of each slice handshake
    // (acknowledge falling edge).
    let nack = b.inv("nack", ackin);
    let tokens = b.ring_counter("sel", nack, Some(rstn), k);

    // Word-complete: the last slice's acknowledge sets `done`;
    // the upstream request falling clears it (return to zero).
    let last_ack = b.and2("last_ack", ackin, tokens[k - 1]);
    let nreq = b.inv("nreq", reqin);
    let done = b.david_cell("done", last_ack, nreq, Some(rstn), false);
    let ackout = b.buf("ackout", done);

    // Slice select multiplexer.
    let dout = b.onehot_mux("dout", &tokens, &slices);

    // Request generation with matched delay (covers the token-ring →
    // mux settling path after each acknowledge falls). The one-hot
    // multiplexer is an OR tree whose depth grows with the slice
    // count, so the matched delay scales with it.
    let ndone = b.inv("ndone", done);
    let req_core = b.and3("req_core", reqin, nack, ndone);
    let reqout = b.buf_chain("req_dly", req_core, matched_delay_bufs(k));

    // Static-timing launch point: every slice of data is launched by
    // the acknowledge edge that advances the token ring (`nack`), and
    // the matched `req_dly` chain must give the token ring + one-hot
    // mux time to settle before the strobe reaches any capture. The
    // annotation names the design point the generator built, so lint
    // fixtures can key on width and ratio.
    b.sim().register_bundle_with(
        name,
        nack,
        Time::ZERO,
        BundleParams { word_width: u16::from(cfg.flit_width), serial_ratio: k as u16 },
    );

    b.pop_scope();
    SerializerPorts { ackout, dout, reqout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{
        attach_consumer, attach_producer, worst_case_pattern, HsConsumer, HsProducer,
    };
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn fixture(
        cfg: &LinkConfig,
        words: Vec<u64>,
        ack_delay: Time,
    ) -> (Vec<u64>, Vec<u64>, usize) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let ackin = b.input("ackin", 1);
        let ports = build_serializer(&mut b, "ser", cfg, din, reqin, ackin, rstn);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        let (p, _) = HsProducer::new(reqin, din, ports.ackout, cfg.flit_width, words.clone());
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(ports.reqout, ports.dout, ackin);
        let c = c.with_ack_delay(ack_delay);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_us(2)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        // Reassemble slices into words for comparison.
        let k = cfg.slices();
        let rebuilt: Vec<u64> = got
            .chunks(k)
            .filter(|c| c.len() == k)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &s)| acc | (s << (i as u8 * cfg.slice_width)))
            })
            .collect();
        (got, rebuilt, words.len())
    }

    #[test]
    fn serializes_words_low_slice_first() {
        let cfg = LinkConfig::default();
        let words = vec![0x0403_0201, 0xDEAD_BEEF];
        let (slices, rebuilt, _) = fixture(&cfg, words.clone(), Time::from_ps(40));
        assert_eq!(slices[..4], [0x01, 0x02, 0x03, 0x04]);
        assert_eq!(rebuilt, words);
    }

    #[test]
    fn worst_case_pattern_all_buffer_counts() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let (_, rebuilt, _) = fixture(&cfg, words.clone(), Time::from_ps(40));
        assert_eq!(rebuilt, words);
    }

    #[test]
    fn slow_receiver_is_tolerated() {
        let cfg = LinkConfig::default();
        let words = vec![0x1234_5678, 0x9ABC_DEF0, 0x0F0F_0F0F];
        let (_, rebuilt, _) = fixture(&cfg, words.clone(), Time::from_ns(7));
        assert_eq!(rebuilt, words);
    }

    #[test]
    fn alternative_slice_widths() {
        // 32 -> 16 (2 slices) and 32 -> 4 (8 slices), per §III "the
        // circuit can easily be modified".
        for slice_width in [16u8, 4] {
            let cfg = LinkConfig { slice_width, ..LinkConfig::default() };
            cfg.check().expect("valid slice width");
            let words = vec![0xA5A5_5A5A, 0x0102_0304];
            let (_, rebuilt, _) = fixture(&cfg, words.clone(), Time::from_ps(40));
            assert_eq!(rebuilt, words, "slice width {slice_width}");
        }
    }

    #[test]
    fn sixteen_bit_flits() {
        let cfg = LinkConfig {
            flit_width: 16,
            slice_width: 4,
            ..LinkConfig::default()
        };
        let words = vec![0xF00D, 0x0808];
        let (_, rebuilt, _) = fixture(&cfg, words.clone(), Time::from_ps(40));
        assert_eq!(rebuilt, words);
    }
}
