//! The observability metrics layer: structured measurements computed
//! from a run's transition trace.
//!
//! The paper's entire evaluation is "read the waveforms and count
//! transitions" — this module automates that reading. Given the
//! [`TraceDump`] of a measured run plus the handshake pairs the
//! assembly registered with the kernel watchdog, it derives:
//!
//! * per-handshake-pair **latency histograms** (req↑ → ack↑) and
//!   **cycle-time histograms** (req↑ → next req↑);
//! * per-block **energy/power attribution** in the paper's Fig 14
//!   categories, reconciled against the live energy ledger;
//! * link **occupancy** (busy/idle fraction of the averaging window)
//!   and **in-flight word depth** over time (the combined interface
//!   FIFO pressure);
//! * **serializer burst timing**: the gaps between slice strobes on
//!   the first wire segment, the paper's `Tburst` measured directly.
//!
//! Everything here is deterministic: two identical runs produce
//! byte-identical [`LinkMetrics::to_json`] output.

use sal_des::{Logic, SignalId, Time};
use sal_des::TraceDump;

use crate::LinkFamily;

/// A deterministic latency histogram with logarithmic (power-of-two
/// femtosecond) buckets plus exact count/min/max/sum.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum_fs: u64,
    min_fs: u64,
    max_fs: u64,
    /// `buckets[i]` counts samples with `2^i <= fs < 2^(i+1)`
    /// (bucket 0 also holds zero-duration samples).
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { count: 0, sum_fs: 0, min_fs: u64::MAX, max_fs: 0, buckets: [0; 64] }
    }

    /// Records one sample, a duration in femtoseconds.
    pub fn record_fs(&mut self, fs: u64) {
        self.count += 1;
        self.sum_fs += fs;
        self.min_fs = self.min_fs.min(fs);
        self.max_fs = self.max_fs.max(fs);
        let idx = if fs == 0 { 0 } else { 63 - fs.leading_zeros() as usize };
        self.buckets[idx] += 1;
    }

    /// Records one sample given as a [`Time`] duration.
    pub fn record(&mut self, d: Time) {
        self.record_fs(d.as_fs());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.min_fs as f64 * 1e-6 }
    }

    /// Largest sample in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.max_fs as f64 * 1e-6 }
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_fs as f64 / self.count as f64 * 1e-6
        }
    }

    /// The non-empty buckets as `(lower bound fs, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> =
            self.buckets().iter().map(|(lo, c)| format!("[{lo},{c}]")).collect();
        format!(
            "{{\"count\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"buckets_fs\": [{}]}}",
            self.count,
            json_f64(self.min_ns()),
            json_f64(self.mean_ns()),
            json_f64(self.max_ns()),
            buckets.join(", "),
        )
    }
}

/// Latency statistics of one watched req/ack pair.
#[derive(Debug, Clone)]
pub struct HandshakeStats {
    /// Label given at watchdog registration (e.g. `"link.ser slice"`).
    pub label: String,
    /// Full path of the request (or VALID) wire.
    pub req_path: String,
    /// Full path of the acknowledge wire.
    pub ack_path: String,
    /// Completed request→acknowledge transactions.
    pub completed: u64,
    /// req↑ → ack↑ forward latency.
    pub latency: Histogram,
    /// req↑ → next req↑ cycle time.
    pub cycle: Histogram,
    /// True if the pair ended the trace mid-protocol (levels
    /// disagree) — the deadlock watchdog's stall criterion.
    pub open: bool,
}

/// Switching power attributed per block from the trace, in the
/// paper's Fig 14 categories — same convention as
/// [`BlockPower`](crate::measure::BlockPower): `conv_uw` includes the
/// analytical clock power.
#[derive(Debug, Clone, Copy)]
pub struct BlockAttribution {
    /// Sync↔async conversion interfaces: switching energy, fJ.
    pub conv_fj: f64,
    /// Serializer + deserializer switching energy, fJ.
    pub serdes_fj: f64,
    /// Wire buffers / pipeline registers switching energy, fJ.
    pub buffers_fj: f64,
    /// Link-scope glue not attributable to a named block, fJ.
    pub other_fj: f64,
    /// Analytical clock power, µW.
    pub clock_uw: f64,
    /// Conversion interfaces averaged over the window + clock, µW.
    pub conv_uw: f64,
    /// Serializer + deserializer averaged over the window, µW.
    pub serdes_uw: f64,
    /// Wire buffers averaged over the window, µW.
    pub buffers_uw: f64,
    /// Glue averaged over the window, µW.
    pub other_uw: f64,
    /// Whole link averaged over the window, µW.
    pub total_uw: f64,
}

/// Link occupancy over the averaging window.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// First-flit-in to last-flit-out.
    pub in_use: Time,
    /// The averaging window.
    pub window: Time,
    /// Total time at least one word was in flight.
    pub busy: Time,
    /// `busy / window`.
    pub busy_fraction: f64,
    /// `1 - busy_fraction`.
    pub idle_fraction: f64,
}

/// Words in flight (sent but not yet delivered) over time — the
/// combined pressure on the two interface FIFOs and the wire.
#[derive(Debug, Clone, Copy)]
pub struct InFlightDepth {
    /// Peak number of words in flight.
    pub max: u32,
    /// Time-weighted mean depth over the averaging window.
    pub mean: f64,
}

/// Serializer burst timing, measured at the first wire segment.
#[derive(Debug, Clone)]
pub struct BurstStats {
    /// The strobe wire the slices were counted on.
    pub strobe_path: String,
    /// Slice strobes observed (rising edges).
    pub slices: u64,
    /// Gap between consecutive slice strobes (the paper's intra-burst
    /// pacing; inter-word gaps land in the top buckets).
    pub gap: Histogram,
}

/// The full metrics report of one traced link run, surfaced by
/// [`LinkRun::metrics`](crate::measure::LinkRun::metrics).
#[derive(Debug, Clone)]
pub struct LinkMetrics {
    /// The paper's link label (I1/I2/I3).
    pub link: String,
    /// Per-handshake-pair latency statistics, in registration order.
    pub handshakes: Vec<HandshakeStats>,
    /// Per-block energy/power attribution from the trace.
    pub blocks: BlockAttribution,
    /// Busy/idle split of the averaging window.
    pub occupancy: Occupancy,
    /// Words-in-flight depth statistics.
    pub in_flight: InFlightDepth,
    /// Burst timing, when the link serializes (absent for I1).
    pub burst: Option<BurstStats>,
    /// Kernel events processed over the run.
    pub events: u64,
}

/// Everything `compute` needs from the measured run.
pub(crate) struct MetricsInputs<'a> {
    pub family: LinkFamily,
    pub scope: &'a str,
    pub dump: &'a TraceDump,
    /// `(label, req, ack)` pairs from the kernel watchdog.
    pub watches: &'a [(String, SignalId, SignalId)],
    pub sent: &'a [(Time, u64)],
    pub received: &'a [(Time, u64)],
    pub in_use: Time,
    pub window: Time,
    pub clock_uw: f64,
    pub events: u64,
}

pub(crate) fn compute(inp: &MetricsInputs<'_>) -> LinkMetrics {
    LinkMetrics {
        link: inp.family.label().to_string(),
        handshakes: handshake_stats(inp.dump, inp.watches),
        blocks: block_attribution(inp.dump, inp.scope, inp.window, inp.clock_uw),
        occupancy: occupancy(inp.sent, inp.received, inp.in_use, inp.window),
        in_flight: in_flight(inp.sent, inp.received, inp.window),
        burst: burst_stats(inp.dump, inp.family, inp.scope),
        events: inp.events,
    }
}

fn rising(old: &sal_des::Value, new: &sal_des::Value) -> bool {
    new.as_logic() == Logic::One && old.as_logic() != Logic::One
}

fn handshake_stats(
    dump: &TraceDump,
    watches: &[(String, SignalId, SignalId)],
) -> Vec<HandshakeStats> {
    struct State {
        last_req_rise: Option<Time>,
        pending_req: Option<Time>,
        req_level: Logic,
        ack_level: Logic,
        stats: HandshakeStats,
    }
    let mut states: Vec<State> = watches
        .iter()
        .map(|(label, req, ack)| State {
            last_req_rise: None,
            pending_req: None,
            req_level: Logic::X,
            ack_level: Logic::X,
            stats: HandshakeStats {
                label: label.clone(),
                req_path: dump.path(*req).to_string(),
                ack_path: dump.path(*ack).to_string(),
                completed: 0,
                latency: Histogram::new(),
                cycle: Histogram::new(),
                open: false,
            },
        })
        .collect();
    // Signal index -> watches listening to it as req / as ack.
    let nsig = dump.signals.len();
    let mut as_req: Vec<Vec<usize>> = vec![Vec::new(); nsig];
    let mut as_ack: Vec<Vec<usize>> = vec![Vec::new(); nsig];
    for (k, (_, req, ack)) in watches.iter().enumerate() {
        if req.index() < nsig {
            as_req[req.index()].push(k);
        }
        if ack.index() < nsig {
            as_ack[ack.index()].push(k);
        }
    }
    for rec in &dump.records {
        let idx = rec.signal.index();
        if idx >= nsig {
            continue;
        }
        for &k in &as_req[idx] {
            let st = &mut states[k];
            st.req_level = rec.new.as_logic();
            if rising(&rec.old, &rec.new) {
                if let Some(prev) = st.last_req_rise {
                    st.stats.cycle.record(rec.time.saturating_sub(prev));
                }
                st.last_req_rise = Some(rec.time);
                if st.pending_req.is_none() {
                    st.pending_req = Some(rec.time);
                }
            }
        }
        for &k in &as_ack[idx] {
            let st = &mut states[k];
            st.ack_level = rec.new.as_logic();
            if rising(&rec.old, &rec.new) {
                if let Some(t0) = st.pending_req.take() {
                    st.stats.latency.record(rec.time.saturating_sub(t0));
                    st.stats.completed += 1;
                }
            }
        }
    }
    states
        .into_iter()
        .map(|mut st| {
            st.stats.open = st.req_level != st.ack_level;
            st.stats
        })
        .collect()
}

/// Which Fig 14 category a link-scope signal belongs to.
fn classify(path: &str, scope: &str, buf: &mut String) -> Option<usize> {
    buf.clear();
    buf.push_str(scope);
    buf.push('.');
    let rest = path.strip_prefix(buf.as_str())?;
    for (i, prefixes) in
        [&["tx_if", "rx_if"][..], &["ser", "des"][..], &["wire", "buffers"][..]]
            .iter()
            .enumerate()
    {
        for p in *prefixes {
            if let Some(tail) = rest.strip_prefix(p) {
                if tail.is_empty() || tail.starts_with('.') {
                    return Some(i);
                }
            }
        }
    }
    Some(3)
}

fn block_attribution(
    dump: &TraceDump,
    scope: &str,
    window: Time,
    clock_uw: f64,
) -> BlockAttribution {
    // Category per signal: 0 conv, 1 serdes, 2 buffers, 3 other link
    // glue, None outside the link scope (testbench, clock source).
    let mut buf = String::new();
    let cats: Vec<Option<usize>> =
        dump.signals.iter().map(|m| classify(&m.path, scope, &mut buf)).collect();
    let mut fj = [0.0f64; 4];
    for rec in &dump.records {
        let idx = rec.signal.index();
        let Some(Some(cat)) = cats.get(idx) else {
            continue;
        };
        let toggles = rec.old.toggles_to(&rec.new);
        if toggles != 0 {
            fj[*cat] += toggles as f64 * dump.signals[idx].energy_per_toggle_fj;
        }
    }
    // 1 fJ per ns is exactly 1 µW.
    let window_ns = window.as_ns();
    let uw = |e: f64| if window_ns > 0.0 { e / window_ns } else { 0.0 };
    BlockAttribution {
        conv_fj: fj[0],
        serdes_fj: fj[1],
        buffers_fj: fj[2],
        other_fj: fj[3],
        clock_uw,
        conv_uw: uw(fj[0]) + clock_uw,
        serdes_uw: uw(fj[1]),
        buffers_uw: uw(fj[2]),
        other_uw: uw(fj[3]),
        total_uw: uw(fj[0] + fj[1] + fj[2] + fj[3]) + clock_uw,
    }
}

/// Merges the sent/received word streams into depth-change events and
/// folds `(busy time, peak depth, depth·dt integral)` over them.
fn depth_sweep(sent: &[(Time, u64)], received: &[(Time, u64)]) -> (Time, u32, f64) {
    let mut busy = Time::ZERO;
    let mut peak: u32 = 0;
    let mut area_ns = 0.0; // depth × ns
    let mut depth: i64 = 0;
    let (mut i, mut j) = (0, 0);
    let mut last: Option<Time> = None;
    while i < sent.len() || j < received.len() {
        // Deliveries first at equal timestamps, so a same-instant
        // send+receive never shows as a phantom depth spike.
        let take_recv = match (sent.get(i), received.get(j)) {
            (Some(&(ts, _)), Some(&(tr, _))) => tr <= ts,
            (None, Some(_)) => true,
            _ => false,
        };
        let t = if take_recv { received[j].0 } else { sent[i].0 };
        if let Some(prev) = last {
            let dt = t.saturating_sub(prev);
            if depth > 0 {
                busy += dt;
                area_ns += depth as f64 * dt.as_ns();
            }
        }
        last = Some(t);
        if take_recv {
            depth -= 1;
            j += 1;
        } else {
            depth += 1;
            i += 1;
            peak = peak.max(depth.max(0) as u32);
        }
    }
    (busy, peak, area_ns)
}

fn occupancy(
    sent: &[(Time, u64)],
    received: &[(Time, u64)],
    in_use: Time,
    window: Time,
) -> Occupancy {
    let (busy, _, _) = depth_sweep(sent, received);
    let wsecs = window.as_secs();
    let busy_fraction = if wsecs > 0.0 { (busy.as_secs() / wsecs).min(1.0) } else { 0.0 };
    Occupancy { in_use, window, busy, busy_fraction, idle_fraction: 1.0 - busy_fraction }
}

fn in_flight(sent: &[(Time, u64)], received: &[(Time, u64)], window: Time) -> InFlightDepth {
    let (_, peak, area_ns) = depth_sweep(sent, received);
    let window_ns = window.as_ns();
    InFlightDepth {
        max: peak,
        mean: if window_ns > 0.0 { area_ns / window_ns } else { 0.0 },
    }
}

fn burst_stats(dump: &TraceDump, family: LinkFamily, scope: &str) -> Option<BurstStats> {
    // The slice strobe as it enters the wire: the transported request
    // (I2, four-phase — one rising edge per slice) or the transported
    // VALID strobe (I3, one pulse per slice). I1 does not serialize.
    let leaf = match family {
        LinkFamily::Sync => return None,
        LinkFamily::PerTransfer => "seg_r0",
        LinkFamily::PerWord => "seg_v0",
    };
    let strobe_path = format!("{scope}.wire.{leaf}");
    let idx = dump.signals.iter().position(|m| m.path == strobe_path)?;
    let mut gap = Histogram::new();
    let mut slices = 0u64;
    let mut last_rise: Option<Time> = None;
    for rec in &dump.records {
        if rec.signal.index() != idx || !rising(&rec.old, &rec.new) {
            continue;
        }
        slices += 1;
        if let Some(prev) = last_rise {
            gap.record(rec.time.saturating_sub(prev));
        }
        last_rise = Some(rec.time);
    }
    Some(BurstStats { strobe_path, slices, gap })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl LinkMetrics {
    /// Serialises the report as deterministic JSON: two identical runs
    /// produce byte-identical output (no wall-clock terms appear).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"link\": \"{}\",\n", json_escape(&self.link)));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        let b = &self.blocks;
        out.push_str(&format!(
            "  \"blocks\": {{\"conv_fj\": {}, \"serdes_fj\": {}, \"buffers_fj\": {}, \
             \"other_fj\": {}, \"clock_uw\": {}, \"conv_uw\": {}, \"serdes_uw\": {}, \
             \"buffers_uw\": {}, \"other_uw\": {}, \"total_uw\": {}}},\n",
            json_f64(b.conv_fj),
            json_f64(b.serdes_fj),
            json_f64(b.buffers_fj),
            json_f64(b.other_fj),
            json_f64(b.clock_uw),
            json_f64(b.conv_uw),
            json_f64(b.serdes_uw),
            json_f64(b.buffers_uw),
            json_f64(b.other_uw),
            json_f64(b.total_uw),
        ));
        let o = &self.occupancy;
        out.push_str(&format!(
            "  \"occupancy\": {{\"in_use_ns\": {}, \"window_ns\": {}, \"busy_ns\": {}, \
             \"busy_fraction\": {}, \"idle_fraction\": {}}},\n",
            json_f64(o.in_use.as_ns()),
            json_f64(o.window.as_ns()),
            json_f64(o.busy.as_ns()),
            json_f64(o.busy_fraction),
            json_f64(o.idle_fraction),
        ));
        out.push_str(&format!(
            "  \"in_flight\": {{\"max\": {}, \"mean\": {}}},\n",
            self.in_flight.max,
            json_f64(self.in_flight.mean),
        ));
        match &self.burst {
            Some(bu) => out.push_str(&format!(
                "  \"burst\": {{\"strobe\": \"{}\", \"slices\": {}, \"gap\": {}}},\n",
                json_escape(&bu.strobe_path),
                bu.slices,
                bu.gap.to_json(),
            )),
            None => out.push_str("  \"burst\": null,\n"),
        }
        out.push_str("  \"handshakes\": [\n");
        for (i, h) in self.handshakes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"req\": \"{}\", \"ack\": \"{}\", \
                 \"completed\": {}, \"open\": {}, \"latency\": {}, \"cycle\": {}}}{}\n",
                json_escape(&h.label),
                json_escape(&h.req_path),
                json_escape(&h.ack_path),
                h.completed,
                h.open,
                h.latency.to_json(),
                h.cycle.to_json(),
                if i + 1 < self.handshakes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_empty_run_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0.0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0.0);
        assert!(h.buckets().is_empty());
        assert!(h.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn histogram_single_transfer() {
        let mut h = Histogram::new();
        h.record(Time::from_ns(2));
        assert_eq!(h.count(), 1);
        assert!((h.min_ns() - 2.0).abs() < 1e-12);
        assert!((h.mean_ns() - 2.0).abs() < 1e-12);
        assert!((h.max_ns() - 2.0).abs() < 1e-12);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 1);
        // 2 ns = 2e6 fs lands in the [2^20, 2^21) bucket.
        assert_eq!(buckets[0], (1 << 20, 1));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        h.record_fs(0);
        h.record_fs(1);
        h.record_fs(2);
        h.record_fs(3);
        h.record_fs(4);
        assert_eq!(h.buckets(), vec![(0, 2), (2, 2), (4, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 4e-6);
    }

    #[test]
    fn depth_sweep_tracks_outstanding_words() {
        let sent = vec![
            (Time::from_ns(10), 1u64),
            (Time::from_ns(20), 2),
            (Time::from_ns(30), 3),
        ];
        let received = vec![
            (Time::from_ns(25), 1u64),
            (Time::from_ns(40), 2),
            (Time::from_ns(50), 3),
        ];
        let (busy, peak, area) = depth_sweep(&sent, &received);
        assert_eq!(busy, Time::from_ns(40)); // 10..50 continuously busy
        assert_eq!(peak, 2);
        // 1·(20-10) + 2·(25-20) + 1·(30-25) + 2·(40-30) + 1·(50-40)
        assert!((area - 55.0).abs() < 1e-9, "area {area}");
    }

    #[test]
    fn occupancy_of_idle_window() {
        let o = occupancy(&[], &[], Time::ZERO, Time::from_ns(100));
        assert_eq!(o.busy, Time::ZERO);
        assert_eq!(o.busy_fraction, 0.0);
        assert_eq!(o.idle_fraction, 1.0);
    }

    #[test]
    fn classify_splits_fig14_categories() {
        let mut buf = String::new();
        assert_eq!(classify("link.tx_if.fifo.d0", "link", &mut buf), Some(0));
        assert_eq!(classify("link.rx_if.sync", "link", &mut buf), Some(0));
        assert_eq!(classify("link.ser.dout", "link", &mut buf), Some(1));
        assert_eq!(classify("link.des.word", "link", &mut buf), Some(1));
        assert_eq!(classify("link.wire.seg_d0", "link", &mut buf), Some(2));
        assert_eq!(classify("link.buffers.st0.q", "link", &mut buf), Some(2));
        assert_eq!(classify("link.ack_in0", "link", &mut buf), Some(3));
        // Outside the link scope entirely.
        assert_eq!(classify("link_clk", "link", &mut buf), None);
        assert_eq!(classify("other.tx_if.x", "link", &mut buf), None);
        // Prefixes must match whole path components.
        assert_eq!(classify("link.serx.y", "link", &mut buf), Some(3));
    }
}
