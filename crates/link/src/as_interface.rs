//! The asynchronous→synchronous interface (paper Fig 5).
//!
//! The mirror image of Fig 4: an asynchronous latch *writer* and a
//! synchronous latch *reader*:
//!
//! * the deserializer's word handshake writes round-robin into `m`-bit
//!   transparent latches, gated by the register's occupancy flag (no
//!   acknowledge is returned while the target register is full — this
//!   is the FIFO's backpressure);
//! * each flag is set asynchronously by the write and cleared by a
//!   one-cycle synchronous pulse after the switch consumes the word;
//! * the sync side sees flags through **two-flip-flop synchronizers**
//!   and presents `FLIT_OUT`/`VALID` to the switch, honouring `STALL`.

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

use crate::LinkConfig;

/// Ports and bookkeeping of the async→sync interface.
#[derive(Debug, Clone)]
pub struct AsInterfacePorts {
    /// Word-level acknowledge to the deserializer.
    pub ackout: SignalId,
    /// Flit to the receiving switch.
    pub flit_out: SignalId,
    /// Valid to the receiving switch.
    pub valid_out: SignalId,
    /// Flip-flop bits on the switch clock (clock-power accounting).
    pub clocked_bits: u32,
}

/// Builds the interface in scope `name`.
///
/// * Async side: `din`/`reqin` word channel from the deserializer.
/// * Sync side: `clk`, `stall` from the switch; drives
///   `flit_out`/`valid_out`.
pub fn build_as_interface(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    clk: SignalId,
    rstn: SignalId,
    din: SignalId,
    reqin: SignalId,
    stall: SignalId,
) -> AsInterfacePorts {
    let depth = cfg.fifo_depth as usize;
    b.push_scope(name);

    // ---------------- Asynchronous write side ----------------
    // Write pointer advances when each write handshake completes.
    let nreq = b.inv("nreq", reqin);
    let wtok = b.ring_counter("wtok", nreq, Some(rstn), depth);

    // Sync read pointer (pre-declared consume enable, below).
    let consume = b.input("consume_pre", 1);
    let rtok = b.ring_counter_en("rtok", clk, consume, Some(rstn), depth);

    let mut les = Vec::with_capacity(depth);
    let mut regs = Vec::with_capacity(depth);
    let mut fs = Vec::with_capacity(depth);
    for kidx in 0..depth {
        b.push_scope(&format!("cell{kidx}"));
        // Occupancy flag: async set by the latch-enable, cleared by a
        // one-cycle sync pulse after consumption.
        let clear = b.input("clear", 1);
        let flag = b.input("flag", 1);
        let nflag = b.inv("nflag", flag);
        let nclear = b.inv("nclear", clear);
        let free = b.and2("free", nflag, nclear);
        let le = b.and3("le", reqin, wtok[kidx], free);
        // flag = David cell(set = le, clr = clear), driving the
        // pre-declared flag signal.
        b.david_cell_into("flag_sr", flag, le, clear, Some(rstn), false);
        // Static-timing capture: the write latch closes when `le`
        // self-clears; the deserialized word must already be stable.
        b.sim().register_capture(din, le);
        let reg = b.dlatch("reg", din, le, None);
        // Two-FF synchronizer into the clock domain.
        let s1 = b.dff("sync1", flag, clk, Some(rstn));
        let s2 = b.dff("sync2", s1, clk, Some(rstn));
        // Clear pulse: the cycle after this register is consumed.
        let cons_k = b.and2("cons_k", rtok[kidx], consume);
        let clear_d = b.dff("clear_ff", cons_k, clk, Some(rstn));
        b.buf_into("clear_drv", clear, clear_d);
        les.push(le);
        regs.push(reg);
        fs.push(s2);
        b.pop_scope();
    }

    // Acknowledge: set by the write's latch-enable (with a small
    // matched delay so the data is captured before the handshake
    // closes) and held until the writer withdraws its request — a
    // four-phase *level*, not a pulse. The latch-enable itself
    // self-clears as soon as the occupancy flag sets, and a writer
    // slower than that sliver (an arbitrarily derated deserializer)
    // would simply never see it.
    let any_le = or_tree(b, "any_le", &les);
    let ack_sr = b.david_cell("ack_sr", any_le, nreq, Some(rstn), false);
    let ackout = b.buf_chain("ack_dly", ack_sr, 2);

    // Local interconnect loads (see the matching note in the Fig 4
    // interface): incoming word bus fans out to all latches; latch
    // outputs route to the read multiplexer; the flit bus drives the
    // switch input.
    b.add_wire_load(din, 100.0 * depth as f64);
    for &r in &regs {
        b.add_wire_load(r, 100.0);
    }

    // ---------------- Synchronous read side ----------------
    let valid_out = b.onehot_mux("valid", &rtok, &fs);
    let nstall = b.inv("nstall", stall);
    let consume_core = b.and2("consume_core", valid_out, nstall);
    b.buf_into("consume_drv", consume, consume_core);
    let flit_out = b.onehot_mux("flit", &rtok, &regs);
    b.add_wire_load(flit_out, 300.0);

    b.pop_scope();

    // Clocked bits: 2 synchronizer FFs + clear FF + read-ring FF per
    // cell, plus the switch-boundary resynchronisation register that
    // samples FLIT_OUT/VALID into the receiving clock domain (it
    // belongs to the link: a purely synchronous link needs no such
    // stage).
    let clocked_bits = depth as u32 * 4 + cfg.flit_width as u32 + 1;
    AsInterfacePorts { ackout, flit_out, valid_out, clocked_bits }
}

/// OR-tree over arbitrarily many 1-bit signals.
fn or_tree(b: &mut CircuitBuilder<'_>, name: &str, sigs: &[SignalId]) -> SignalId {
    assert!(!sigs.is_empty());
    let mut terms = sigs.to_vec();
    let mut level = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (j, chunk) in terms.chunks(4).enumerate() {
            let nm = format!("{name}_{level}_{j}");
            let out = match *chunk {
                [a] => a,
                [a, b2] => b.or2(&nm, a, b2),
                [a, b2, c] => b.or3(&nm, a, b2, c),
                [a, b2, c, d] => b.or4(&nm, a, b2, c, d),
                _ => unreachable!(),
            };
            next.push(out);
        }
        terms = next;
        level += 1;
    }
    terms[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{
        attach_producer, attach_sync_sink, worst_case_pattern, HsProducer, SyncFlitSink,
    };
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn run_iface(
        cfg: &LinkConfig,
        words: Vec<u64>,
        stall_fn: Box<dyn FnMut(u64) -> bool>,
        run_for: Time,
    ) -> Vec<u64> {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", cfg.clk_period);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let stall = b.input("stall", 1);
        let ports = build_as_interface(&mut b, "as", cfg, clk, rstn, din, reqin, stall);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        let (p, _) = HsProducer::new(reqin, din, ports.ackout, cfg.flit_width, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(2));
        let (snk, rx) =
            SyncFlitSink::with_stall_fn(clk, ports.valid_out, ports.flit_out, stall, stall_fn);
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(run_for).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        got
    }

    #[test]
    fn words_reach_the_sync_domain_in_order() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let got = run_iface(&cfg, words.clone(), Box::new(|_| false), Time::from_us(1));
        assert_eq!(got, words);
    }

    #[test]
    fn sustained_stream() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (0..16).map(|i| 0x1111_1111u64.wrapping_mul(i) & 0xFFFF_FFFF).collect();
        let got = run_iface(&cfg, words.clone(), Box::new(|_| false), Time::from_us(2));
        assert_eq!(got, words);
    }

    #[test]
    fn stalling_switch_backpressures_writer() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (1..=10).collect();
        // Accept one word every 8 cycles only.
        let got = run_iface(&cfg, words.clone(), Box::new(|c| c % 8 != 0), Time::from_us(4));
        assert_eq!(got, words);
    }

    #[test]
    fn full_fifo_withholds_acknowledge() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (1..=8).collect();
        // Never consume: at most `depth` writes may be acknowledged.
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", cfg.clk_period);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let stall = b.tie("stall", Value::one(1));
        let ports = build_as_interface(&mut b, "as", &cfg, clk, rstn, din, reqin, stall);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        let (p, sent) = HsProducer::new(reqin, din, ports.ackout, cfg.flit_width, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(2));
        sim.run_until(Time::from_us(1)).unwrap();
        // `sent` logs request *attempts*: depth words are acknowledged
        // and one further request hangs unanswered.
        assert_eq!(sent.borrow().len(), cfg.fifo_depth as usize + 1);
    }
}
