//! Declarative link specification: the validated, hashable description
//! of one point in the serialization design space.
//!
//! The paper evaluates exactly three hand-assembled links — I1/I2/I3
//! at a fixed 32-bit width and 4:1 serialization ratio. A [`LinkSpec`]
//! names a *family* plus the free axes the generator can sweep:
//!
//! * [`LinkFamily`] — synchronous parallel (I1), serialized
//!   per-transfer ack (I2), serialized per-word ack (I3);
//! * `word_width` — 8..=64 bits;
//! * `serial_ratio` — 2:1, 4:1, 8:1 or 16:1 (slice width is
//!   `word_width / serial_ratio`);
//! * `buffer_depth` — stations along the wire;
//! * [`ProtectionMode`] and an optional [`RetryConfig`].
//!
//! A constructed `LinkSpec` is always valid: [`LinkSpecBuilder::build`]
//! front-loads every structural check as a typed [`SpecError`] (which
//! chains into [`BuildError`] and
//! [`RunFailure`](crate::RunFailure) via `source()`), so
//! [`generate`] and [`run_spec`](crate::measure::run_spec) can assume
//! consistency. [`LinkSpec::content_hash`] gives a canonical 64-bit
//! digest used by the content-addressed result store in `sal-bench`.
//!
//! ```
//! use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};
//! let spec = LinkSpec::builder()
//!     .family(LinkFamily::PerWord)
//!     .word_width(16)
//!     .serial_ratio(8)
//!     .build()
//!     .unwrap();
//! assert_eq!(spec.slice_width(), 2);
//! // The paper's three points are one constructor away:
//! let i2 = LinkSpec::paper(LinkFamily::PerTransfer);
//! assert_eq!((i2.word_width(), i2.serial_ratio()), (32, 4));
//! ```

use sal_cells::{BuildError, CircuitBuilder};

use crate::assembly::{build_family, LinkHandles};
use crate::config::{ConfigError, LinkConfig, ProtectionMode};

/// The three link architectures of the paper's Fig 9, as *families*
/// the generator parameterizes over width, ratio, depth and
/// protection. (The pre-spec `LinkKind` enum, whose variants named the
/// three fixed paper points, is gone — the spec path is the only one.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum LinkFamily {
    /// I1 — fully synchronous parallel link (clocked pipeline
    /// buffers, no serialization on the wire).
    Sync,
    /// I2 — asynchronous serialized link, per-transfer (per-slice)
    /// acknowledgement through four-phase wire buffers.
    PerTransfer,
    /// I3 — asynchronous serialized link, per-word acknowledgement
    /// with a ring-oscillator-paced source-synchronous burst.
    PerWord,
}

impl LinkFamily {
    /// All three families, in the paper's order.
    pub const ALL: [LinkFamily; 3] =
        [LinkFamily::Sync, LinkFamily::PerTransfer, LinkFamily::PerWord];

    /// The paper's label (I1/I2/I3).
    pub fn label(self) -> &'static str {
        match self {
            LinkFamily::Sync => "I1",
            LinkFamily::PerTransfer => "I2",
            LinkFamily::PerWord => "I3",
        }
    }

    /// Number of switch-to-switch wires a link of this family needs
    /// under `cfg`.
    pub fn wires(self, cfg: &LinkConfig) -> u32 {
        match self {
            LinkFamily::Sync => cfg.wires_sync(),
            _ => cfg.wires_async(),
        }
    }

    /// The paper-point spec of this family: 32-bit word, 4:1 ratio,
    /// 4 buffers, no protection.
    pub fn paper_spec(self) -> LinkSpec {
        LinkSpec::paper(self)
    }
}

impl std::fmt::Display for LinkFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bounded-retransmission policy carried by a protected [`LinkSpec`].
///
/// Mirrors the three retry fields of [`LinkConfig`]; `None` on the
/// spec means "the default policy" (this type's [`Default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RetryConfig {
    /// Consecutive failures of one word before the transmitter gives
    /// up and accounts the word as lost. Must be ≥ `resync_retries`.
    pub max_retries: u8,
    /// Consecutive failures before a watchdog-triggered resync drain.
    pub resync_retries: u8,
    /// Base tap of the timeout ripple counter (`1..=20`); each retry
    /// selects the next tap, doubling the horizon.
    pub timeout_tap: u8,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { max_retries: 6, resync_retries: 2, timeout_tap: 6 }
    }
}

/// Why a [`LinkSpecBuilder`] refused to construct a [`LinkSpec`].
///
/// Structural spec-level checks come first (width, ratio, depth,
/// family compatibility); anything the derived [`LinkConfig`] still
/// rejects — protection widening past 64 bits, CRC slice mismatches —
/// surfaces as [`SpecError::Config`] with the typed [`ConfigError`]
/// as its [`source`](std::error::Error::source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecError {
    /// `word_width` outside `8..=64`.
    WordWidth {
        /// The rejected width.
        width: u8,
    },
    /// `serial_ratio` not one of 2, 4, 8, 16.
    SerialRatio {
        /// The rejected ratio.
        ratio: u8,
    },
    /// `serial_ratio` does not divide `word_width`, so no integral
    /// slice width exists.
    WidthNotDivisible {
        /// The word width.
        width: u8,
        /// The ratio that fails to divide it.
        ratio: u8,
    },
    /// `buffer_depth` outside `1..=16`.
    BufferDepth {
        /// The rejected depth.
        depth: u32,
    },
    /// The synchronous parallel link carries its flit and valid tag
    /// on one concatenated bus, so its word width tops out one bit
    /// short of the kernel's 64-bit signal limit.
    SyncWordTooWide {
        /// The rejected width.
        width: u8,
    },
    /// The family cannot carry this protection mode (the synchronous
    /// parallel link has no serialized wire to protect).
    FamilyProtection {
        /// The family.
        family: LinkFamily,
        /// The rejected protection mode.
        protection: ProtectionMode,
    },
    /// A retry policy was given with [`ProtectionMode::Off`]: without
    /// a checker there is no NACK to retransmit on.
    RetryWithoutProtection,
    /// Retry policy out of range: `resync_retries` must be in
    /// `1..=max_retries` and `timeout_tap` in `1..=20`.
    RetryPolicy {
        /// Configured give-up bound.
        max_retries: u8,
        /// Configured resync threshold.
        resync_retries: u8,
        /// Configured base timeout tap.
        timeout_tap: u8,
    },
    /// The derived [`LinkConfig`] failed its own validation.
    Config(ConfigError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::WordWidth { width } => {
                write!(f, "word width must be 8..=64 (got {width})")
            }
            SpecError::SerialRatio { ratio } => {
                write!(f, "serialization ratio must be 2, 4, 8 or 16 (got {ratio})")
            }
            SpecError::WidthNotDivisible { width, ratio } => {
                write!(f, "serialization ratio must divide the word width ({ratio} does not divide {width})")
            }
            SpecError::BufferDepth { depth } => {
                write!(f, "buffer depth must be 1..=16 (got {depth})")
            }
            SpecError::SyncWordTooWide { width } => {
                write!(
                    f,
                    "the synchronous link carries flit+valid on one bus, so its word \
                     width must be 8..=63 (got {width})"
                )
            }
            SpecError::FamilyProtection { family, protection } => {
                write!(
                    f,
                    "the {} family has no serialized wire to protect (got {})",
                    family.label(),
                    protection.label()
                )
            }
            SpecError::RetryWithoutProtection => {
                write!(f, "a retry policy needs protection enabled (no checker, no NACK)")
            }
            SpecError::RetryPolicy { max_retries, resync_retries, timeout_tap } => {
                write!(
                    f,
                    "retry policy out of range (max_retries {max_retries}, resync_retries \
                     {resync_retries}, timeout_tap {timeout_tap}): need 1 <= resync_retries \
                     <= max_retries and 1 <= timeout_tap <= 20"
                )
            }
            SpecError::Config(e) => write!(f, "derived link configuration invalid: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::Config(e)
    }
}

impl From<SpecError> for BuildError {
    fn from(e: SpecError) -> Self {
        BuildError::Config { message: e.to_string() }
    }
}

/// A validated point in the serialization design space.
///
/// Fields are private: every `LinkSpec` in existence passed
/// [`LinkSpecBuilder::build`], so downstream code (the generator, the
/// campaign cache) never re-validates. Construct with
/// [`LinkSpec::builder`], [`LinkSpec::paper`] or
/// [`LinkSpec::from_config`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct LinkSpec {
    family: LinkFamily,
    word_width: u8,
    serial_ratio: u8,
    buffer_depth: u32,
    protection: ProtectionMode,
    retry: Option<RetryConfig>,
}

impl LinkSpec {
    /// Starts a builder at the paper's operating point (I2 family,
    /// 32-bit word, 4:1 ratio, 4 buffers, no protection).
    pub fn builder() -> LinkSpecBuilder {
        LinkSpecBuilder::default()
    }

    /// The paper point of `family`: 32-bit word, 4:1 ratio, 4
    /// buffers, no protection. Infallible by construction.
    pub fn paper(family: LinkFamily) -> LinkSpec {
        LinkSpec {
            family,
            word_width: 32,
            serial_ratio: 4,
            buffer_depth: 4,
            protection: ProtectionMode::Off,
            retry: None,
        }
    }

    /// Recovers the spec a [`LinkConfig`] describes, for migrating
    /// config-first call sites. Fails when the config sits outside
    /// the spec lattice (e.g. a serialization ratio that is not a
    /// supported power of two). Retry fields are carried over only
    /// when protection is on — they are inert otherwise.
    pub fn from_config(family: LinkFamily, cfg: &LinkConfig) -> Result<LinkSpec, SpecError> {
        if cfg.slice_width == 0 || !cfg.flit_width.is_multiple_of(cfg.slice_width) {
            return Err(SpecError::WidthNotDivisible {
                width: cfg.flit_width,
                ratio: cfg.slice_width.max(1),
            });
        }
        let ratio = cfg.flit_width / cfg.slice_width;
        let mut b = LinkSpec::builder()
            .family(family)
            .word_width(cfg.flit_width)
            .serial_ratio(ratio)
            .buffer_depth(cfg.buffers)
            .protection(cfg.protection);
        if cfg.protection != ProtectionMode::Off {
            b = b.retry(RetryConfig {
                max_retries: cfg.max_retries,
                resync_retries: cfg.resync_retries,
                timeout_tap: cfg.timeout_tap,
            });
        }
        b.build()
    }

    /// The link family.
    pub fn family(&self) -> LinkFamily {
        self.family
    }

    /// Parallel word width `m`, bits.
    pub fn word_width(&self) -> u8 {
        self.word_width
    }

    /// Serialization ratio `m : n` (2, 4, 8 or 16).
    pub fn serial_ratio(&self) -> u8 {
        self.serial_ratio
    }

    /// Serial slice width `n = word_width / serial_ratio`, bits.
    pub fn slice_width(&self) -> u8 {
        self.word_width / self.serial_ratio
    }

    /// Buffer stations along the wire.
    pub fn buffer_depth(&self) -> u32 {
        self.buffer_depth
    }

    /// Error-detection scheme over the serialized wire.
    pub fn protection(&self) -> ProtectionMode {
        self.protection
    }

    /// Retransmission policy, when one was specified.
    pub fn retry(&self) -> Option<RetryConfig> {
        self.retry
    }

    /// Switch-to-switch wires a link of this spec occupies (the
    /// paper's Fig 10 axis). Independent of the physical base config.
    pub fn wires(&self) -> u32 {
        self.family.wires(&self.apply(&LinkConfig::default()))
    }

    /// Merges the spec onto a physical base configuration: the spec
    /// decides word width, slice width, buffer count, protection and
    /// retry policy; `base` supplies everything physical (wire
    /// length, clock period, FIFO depth, oscillator stages, receiver
    /// style). The paper spec over the default base reproduces
    /// [`LinkConfig::default`] exactly — bit-identical netlists.
    pub fn apply(&self, base: &LinkConfig) -> LinkConfig {
        let mut cfg = base.clone();
        cfg.flit_width = self.word_width;
        cfg.slice_width = self.slice_width();
        cfg.buffers = self.buffer_depth;
        cfg.protection = self.protection;
        if let Some(r) = self.retry {
            cfg.max_retries = r.max_retries;
            cfg.resync_retries = r.resync_retries;
            cfg.timeout_tap = r.timeout_tap;
        }
        cfg
    }

    /// Canonical FNV-1a content hash over the spec's logical fields.
    ///
    /// Stable across processes and runs — two specs hash equal iff
    /// they are equal — so it keys the content-addressed result store
    /// (`spec-hash → measured record`) in `sal-bench`.
    ///
    /// ```
    /// use sal_link::{LinkFamily, LinkSpec};
    /// let a = LinkSpec::paper(LinkFamily::PerWord);
    /// let b = LinkSpec::builder().family(LinkFamily::PerWord).build().unwrap();
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// ```
    pub fn content_hash(&self) -> u64 {
        let family = match self.family {
            LinkFamily::Sync => 1u8,
            LinkFamily::PerTransfer => 2,
            LinkFamily::PerWord => 3,
        };
        let protection = match self.protection {
            ProtectionMode::Off => 0u8,
            ProtectionMode::Parity => 1,
            ProtectionMode::Crc8 => 2,
        };
        let retry = self.retry.unwrap_or(RetryConfig { max_retries: 0, resync_retries: 0, timeout_tap: 0 });
        let bytes = [
            1, // encoding version
            family,
            self.word_width,
            self.serial_ratio,
            self.buffer_depth.min(255) as u8,
            protection,
            u8::from(self.retry.is_some()),
            retry.max_retries,
            retry.resync_retries,
            retry.timeout_tap,
        ];
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Builder for [`LinkSpec`] — the only way to construct one.
///
/// Defaults to the paper point of the I2 family; every setter is a
/// consuming `#[must_use]` method so specs compose in one expression.
#[derive(Debug, Clone)]
pub struct LinkSpecBuilder {
    family: LinkFamily,
    word_width: u8,
    serial_ratio: u8,
    buffer_depth: u32,
    protection: ProtectionMode,
    retry: Option<RetryConfig>,
}

impl Default for LinkSpecBuilder {
    fn default() -> Self {
        LinkSpecBuilder {
            family: LinkFamily::PerTransfer,
            word_width: 32,
            serial_ratio: 4,
            buffer_depth: 4,
            protection: ProtectionMode::Off,
            retry: None,
        }
    }
}

impl LinkSpecBuilder {
    /// Selects the link family.
    #[must_use]
    pub fn family(mut self, family: LinkFamily) -> Self {
        self.family = family;
        self
    }

    /// Sets the parallel word width (8..=64 bits).
    #[must_use]
    pub fn word_width(mut self, bits: u8) -> Self {
        self.word_width = bits;
        self
    }

    /// Sets the serialization ratio (2, 4, 8 or 16).
    #[must_use]
    pub fn serial_ratio(mut self, ratio: u8) -> Self {
        self.serial_ratio = ratio;
        self
    }

    /// Sets the number of buffer stations along the wire (1..=16).
    #[must_use]
    pub fn buffer_depth(mut self, depth: u32) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Selects the error-detection scheme.
    #[must_use]
    pub fn protection(mut self, protection: ProtectionMode) -> Self {
        self.protection = protection;
        self
    }

    /// Attaches a bounded-retransmission policy (needs protection).
    #[must_use]
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Validates and constructs the spec.
    ///
    /// Spec-level checks run first; whatever the derived
    /// [`LinkConfig`] still rejects (protection widening past the
    /// 64-bit datapath, CRC slice mismatches …) comes back as
    /// [`SpecError::Config`].
    pub fn build(self) -> Result<LinkSpec, SpecError> {
        if !(8..=64).contains(&self.word_width) {
            return Err(SpecError::WordWidth { width: self.word_width });
        }
        if !matches!(self.serial_ratio, 2 | 4 | 8 | 16) {
            return Err(SpecError::SerialRatio { ratio: self.serial_ratio });
        }
        if !self.word_width.is_multiple_of(self.serial_ratio) {
            return Err(SpecError::WidthNotDivisible {
                width: self.word_width,
                ratio: self.serial_ratio,
            });
        }
        if !(1..=16).contains(&self.buffer_depth) {
            return Err(SpecError::BufferDepth { depth: self.buffer_depth });
        }
        if self.family == LinkFamily::Sync && self.word_width == 64 {
            return Err(SpecError::SyncWordTooWide { width: self.word_width });
        }
        if self.family == LinkFamily::Sync && self.protection != ProtectionMode::Off {
            return Err(SpecError::FamilyProtection {
                family: self.family,
                protection: self.protection,
            });
        }
        if self.protection == ProtectionMode::Off && self.retry.is_some() {
            return Err(SpecError::RetryWithoutProtection);
        }
        if let Some(r) = self.retry {
            if !(1..=r.max_retries).contains(&r.resync_retries)
                || !(1..=20).contains(&r.timeout_tap)
            {
                return Err(SpecError::RetryPolicy {
                    max_retries: r.max_retries,
                    resync_retries: r.resync_retries,
                    timeout_tap: r.timeout_tap,
                });
            }
        }
        let spec = LinkSpec {
            family: self.family,
            word_width: self.word_width,
            serial_ratio: self.serial_ratio,
            buffer_depth: self.buffer_depth,
            protection: self.protection,
            retry: self.retry,
        };
        // Anything the structural checks above cannot see (protection
        // widening, CRC divisibility against the widened word) is
        // caught by the derived config's own validation.
        spec.apply(&LinkConfig::default()).check()?;
        Ok(spec)
    }
}

/// Generates a link from its spec in scope `name` — the single
/// constructor behind the declarative API. `base` supplies the
/// physical parameters the spec does not name (wire length, clock
/// period, FIFO depth, oscillator stages).
///
/// In debug builds (every test run) the freshly generated netlist is
/// passed through every `sal-lint` pass and the first error aborts
/// the build — generated links are lint-clean by construction.
///
/// ```
/// use sal_cells::CircuitBuilder;
/// use sal_des::Simulator;
/// use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};
/// let spec = LinkSpec::builder().family(LinkFamily::PerWord).serial_ratio(8).build().unwrap();
/// let mut sim = Simulator::new();
/// let lib = sal_tech::St012Library::default();
/// let mut b = CircuitBuilder::new(&mut sim, &lib);
/// let handles = generate(&mut b, &spec, "link", &LinkConfig::default()).unwrap();
/// assert_eq!(handles.family, LinkFamily::PerWord);
/// ```
pub fn generate(
    b: &mut CircuitBuilder<'_>,
    spec: &LinkSpec,
    name: &str,
    base: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    build_family(b, spec.family(), name, &spec.apply(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_reproduce_the_default_config() {
        for family in LinkFamily::ALL {
            let spec = LinkSpec::paper(family);
            assert_eq!(spec.apply(&LinkConfig::default()), LinkConfig::default());
            assert_eq!(spec.slice_width(), 8);
        }
    }

    #[test]
    fn builder_defaults_are_the_paper_point() {
        let spec = LinkSpec::builder().build().expect("default spec valid");
        assert_eq!(spec, LinkSpec::paper(LinkFamily::PerTransfer));
    }

    #[test]
    fn every_spec_error_variant_fires() {
        use SpecError as E;
        let b = LinkSpec::builder;
        assert_eq!(b().word_width(65).build().unwrap_err(), E::WordWidth { width: 65 });
        assert_eq!(b().word_width(4).build().unwrap_err(), E::WordWidth { width: 4 });
        assert_eq!(b().serial_ratio(3).build().unwrap_err(), E::SerialRatio { ratio: 3 });
        assert_eq!(
            b().word_width(24).serial_ratio(16).build().unwrap_err(),
            E::WidthNotDivisible { width: 24, ratio: 16 }
        );
        assert_eq!(b().buffer_depth(0).build().unwrap_err(), E::BufferDepth { depth: 0 });
        assert_eq!(b().buffer_depth(17).build().unwrap_err(), E::BufferDepth { depth: 17 });
        assert_eq!(
            b().family(LinkFamily::Sync).protection(ProtectionMode::Parity).build().unwrap_err(),
            E::FamilyProtection { family: LinkFamily::Sync, protection: ProtectionMode::Parity }
        );
        assert_eq!(
            b().family(LinkFamily::Sync).word_width(64).build().unwrap_err(),
            E::SyncWordTooWide { width: 64 }
        );
        assert!(b().family(LinkFamily::PerWord).word_width(64).build().is_ok());
        assert_eq!(
            b().retry(RetryConfig::default()).build().unwrap_err(),
            E::RetryWithoutProtection
        );
        assert!(matches!(
            b().protection(ProtectionMode::Parity)
                .retry(RetryConfig { max_retries: 2, resync_retries: 5, timeout_tap: 6 })
                .build()
                .unwrap_err(),
            E::RetryPolicy { .. }
        ));
        // Derived-config failures chain through SpecError::Config.
        let err = b()
            .word_width(64)
            .protection(ProtectionMode::Crc8)
            .build()
            .unwrap_err();
        assert_eq!(err, E::Config(ConfigError::ProtectionTooWide { width: 72 }));
    }

    #[test]
    fn spec_error_chains_to_config_error() {
        use std::error::Error as _;
        let err = LinkSpec::builder()
            .word_width(32)
            .serial_ratio(2)
            .protection(ProtectionMode::Crc8)
            .build()
            .unwrap_err();
        let src = err.source().expect("Config variant chains");
        assert!(src.downcast_ref::<ConfigError>().is_some());
        assert!(LinkSpec::builder()
            .word_width(65)
            .build()
            .unwrap_err()
            .source()
            .is_none());
        // And onward into the builder error channel.
        let build: BuildError = err.into();
        assert!(matches!(
            build,
            BuildError::Config { ref message } if message.contains("CRC-8")
        ));
    }

    #[test]
    fn content_hash_is_stable_and_injective_over_the_sweep() {
        // Pinned value: the store on disk depends on this encoding.
        assert_eq!(
            LinkSpec::paper(LinkFamily::PerTransfer).content_hash(),
            LinkSpec::builder().build().unwrap().content_hash()
        );
        let mut seen = std::collections::HashMap::new();
        for family in LinkFamily::ALL {
            for width in [8u8, 16, 24, 32, 48, 64] {
                for ratio in [2u8, 4, 8, 16] {
                    for depth in [1u32, 2, 4, 8, 16] {
                        for protection in
                            [ProtectionMode::Off, ProtectionMode::Parity, ProtectionMode::Crc8]
                        {
                            let Ok(spec) = LinkSpec::builder()
                                .family(family)
                                .word_width(width)
                                .serial_ratio(ratio)
                                .buffer_depth(depth)
                                .protection(protection)
                                .build()
                            else {
                                continue;
                            };
                            let h = spec.content_hash();
                            if let Some(prev) = seen.insert(h, spec.clone()) {
                                panic!("hash collision: {prev:?} vs {spec:?}");
                            }
                        }
                    }
                }
            }
        }
        assert!(seen.len() > 100, "sweep covered {} valid cells", seen.len());
    }

    #[test]
    fn from_config_round_trips() {
        let cfg = LinkConfig {
            flit_width: 16,
            slice_width: 2,
            buffers: 6,
            protection: ProtectionMode::Parity,
            ..LinkConfig::default()
        };
        let spec = LinkSpec::from_config(LinkFamily::PerTransfer, &cfg).expect("valid");
        assert_eq!((spec.word_width(), spec.serial_ratio(), spec.buffer_depth()), (16, 8, 6));
        assert_eq!(spec.apply(&LinkConfig::default()), cfg);
        // A ratio outside the lattice is a typed error, not a panic.
        let odd = LinkConfig { flit_width: 24, slice_width: 8, ..LinkConfig::default() };
        assert_eq!(
            LinkSpec::from_config(LinkFamily::PerWord, &odd).unwrap_err(),
            SpecError::SerialRatio { ratio: 3 }
        );
    }

    #[test]
    fn wires_track_protection_and_ratio() {
        let base = LinkSpec::paper(LinkFamily::PerTransfer);
        assert_eq!(base.wires(), 10); // 8 data + req + ack
        assert_eq!(LinkSpec::paper(LinkFamily::Sync).wires(), 33);
        let narrow = LinkSpec::builder().serial_ratio(16).build().unwrap();
        assert_eq!(narrow.wires(), 4); // 2 data + req + ack
    }
}
