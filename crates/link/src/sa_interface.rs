//! The synchronous→asynchronous interface (paper Fig 4).
//!
//! A FIFO with a synchronous write side and an asynchronous read side:
//!
//! * four (configurable) `m`-bit registers written round-robin by the
//!   switch clock when `VALID ∧ ¬STALL`;
//! * a per-register occupancy flag built from **two clocked D-type
//!   flip-flops with asynchronous clear** — the paper's metastability
//!   protection ("the use of two flip-flops to build a synchronizer is
//!   known to ensure protection against metastability", §III);
//! * an asynchronous one-hot read sequencer (the paper's David-cell
//!   chain) that offers each occupied register to the serializer over
//!   a four-phase bundled-data word handshake and clears the flag on
//!   acknowledge.

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

use crate::LinkConfig;

/// Ports and bookkeeping of the sync→async interface.
#[derive(Debug, Clone)]
pub struct SaInterfacePorts {
    /// Backpressure to the sending switch (high = hold the flit).
    pub stall: SignalId,
    /// Word data to the serializer (stable for the whole handshake).
    pub dout: SignalId,
    /// Word request to the serializer.
    pub reqout: SignalId,
    /// Flip-flop bits on the switch clock (clock-power accounting).
    pub clocked_bits: u32,
}

/// Builds the interface in scope `name`.
///
/// * Sync side: `clk`, `flitin`, `valid` from the switch; drives
///   `stall` back.
/// * Async side: drives `dout`/`reqout`; `ackin` is the serializer's
///   word-level acknowledge.
pub fn build_sa_interface(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    clk: SignalId,
    rstn: SignalId,
    flitin: SignalId,
    valid: SignalId,
    ackin: SignalId,
) -> SaInterfacePorts {
    let depth = cfg.fifo_depth as usize;
    let m = cfg.flit_width;
    b.push_scope(name);

    // ---------------- Asynchronous read sequencer ----------------
    // Token advances when each word handshake completes (ack falls).
    let nack = b.inv("nack", ackin);
    let rtok = b.ring_counter("rtok", nack, Some(rstn), depth);

    // ---------------- Write side ----------------
    // Pre-declare the stall output (it gates the write-pointer ring
    // that in turn selects which flag the stall looks at).
    let mut flags = Vec::with_capacity(depth);
    let mut occupied = Vec::with_capacity(depth);
    let mut regs = Vec::with_capacity(depth);

    // Write pointer: advances on every accepted write.
    let stall_sig = b.input("stall_pre", 1);
    let nstall = b.inv("nstall", stall_sig);
    let wr_accept = b.and2("wr_accept", valid, nstall);
    let wtok = b.ring_counter_en("wtok", clk, wr_accept, Some(rstn), depth);

    for kidx in 0..depth {
        b.push_scope(&format!("cell{kidx}"));
        let wr_en = b.and2("wr_en", wtok[kidx], wr_accept);

        // Flag: two clocked DFFs, set at the write edge, cleared
        // asynchronously by the read side (paper Fig 4 "FLAG").
        let clear = b.and2("clear", ackin, rtok[kidx]);
        let nclear = b.inv("nclear", clear);
        let flag_rstn = b.and2("flag_rstn", rstn, nclear);
        let ff1 = b.input("ff1", 1);
        let set_or_hold = b.or2("set_or_hold", wr_en, ff1);
        b.dff_into("ff1_ff", ff1, set_or_hold, clk, Some(flag_rstn));
        let ff2 = b.dff("ff2", ff1, clk, Some(flag_rstn));
        flags.push(ff1);
        // A register also counts as unavailable while its asynchronous
        // clear is asserted (the reader may hold the acknowledge high
        // for a long time; writing then would set the flag straight
        // back into reset and lose the word).
        let occ = b.or2("occ", ff2, clear);
        occupied.push(occ);

        // Data register with write enable (mux + DFF).
        let q = b.input("reg", m);
        let d = b.mux2("wd", wr_en, q, flitin);
        b.dff_into("reg_ff", q, d, clk, Some(rstn));
        regs.push(q);
        b.pop_scope();
    }

    // STALL: *registered almost-full*. The occupancy flags clear
    // asynchronously (the reader's acknowledge), so a combinational
    // stall could change within a setup time of the clock edge and
    // the switch and the write logic could then disagree about
    // whether a word was accepted. Registering the stall makes it
    // stable for the whole cycle; because it is then one cycle stale,
    // it must assert while the *next* write target is still occupied
    // too (the almost-full threshold covers the staleness).
    let occ_cur = b.onehot_mux("occ_cur", &wtok, &occupied);
    let occ_rot: Vec<_> = (0..depth).map(|k| occupied[(k + 1) % depth]).collect();
    let occ_next = b.onehot_mux("occ_next", &wtok, &occ_rot);
    let stall_d = b.or2("stall_d", occ_cur, occ_next);
    b.dff_into("stall_ff", stall_sig, stall_d, clk, Some(rstn));

    // Local interconnect loads: the flit bus fans out to all FIFO
    // registers, each register output routes to the read multiplexer,
    // and the mux output drives the serializer. These intra-block
    // wires carry most of the interface's switched capacitance in the
    // synthesized design (the paper's Fig 14 shows the conversion
    // blocks dominating the asynchronous links' power).
    b.add_wire_load(flitin, 100.0 * depth as f64);
    for &q in &regs {
        b.add_wire_load(q, 100.0);
    }

    // ---------------- Asynchronous read data path ----------------
    let dout = b.onehot_mux("dout", &rtok, &regs);
    b.add_wire_load(dout, 300.0);
    let rdy = b.onehot_mux("rdy", &rtok, &flags);
    let req_core = b.and2("req_core", rdy, nack);
    let reqout =
        b.buf_chain("req_dly", req_core, crate::serializer::matched_delay_bufs(depth));

    b.pop_scope();

    // Free-running clock sinks: both flag FFs and the write-pointer FF
    // per cell. The data registers are written through a clock-gated
    // enable (Fig 4 drives REG from WR_EN), so their clock pins toggle
    // only on actual writes — that switching is already captured by
    // the activity-based energy accounting.
    let clocked_bits = depth as u32 * 3 + 1;
    SaInterfacePorts { stall: stall_sig, dout, reqout, clocked_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{
        attach_consumer, attach_sync_source, worst_case_pattern, HsConsumer, SyncFlitSource,
    };
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn run_iface(
        cfg: &LinkConfig,
        words: Vec<u64>,
        ack_delay: Time,
        run_for: Time,
    ) -> (Vec<u64>, Vec<(Time, u64)>) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", cfg.clk_period);
        let flitin = b.input("flitin", cfg.flit_width);
        let valid = b.input("valid", 1);
        let ackin = b.input("ackin", 1);
        let ports = build_sa_interface(&mut b, "sa", cfg, clk, rstn, flitin, valid, ackin);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        let (src, sent) =
            SyncFlitSource::new(clk, ports.stall, flitin, valid, cfg.flit_width, words);
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        let (c, rx) = HsConsumer::new(ports.reqout, ports.dout, ackin);
        let c = c.with_ack_delay(ack_delay);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(run_for).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        let sent_log = sent.borrow().clone();
        (got, sent_log)
    }

    #[test]
    fn words_cross_the_clock_boundary_in_order() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let (got, _) = run_iface(&cfg, words.clone(), Time::from_ps(40), Time::from_ns(300));
        assert_eq!(got, words);
    }

    #[test]
    fn many_words_sustained() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (0..20).map(|i| (i * 0x0101_0101) & 0xFFFF_FFFF).collect();
        let (got, _) = run_iface(&cfg, words.clone(), Time::from_ps(40), Time::from_us(1));
        assert_eq!(got, words);
    }

    #[test]
    fn slow_reader_stalls_the_switch() {
        // Reader takes ~80 ns per word; a 10 ns clock would otherwise
        // overrun the 4-deep FIFO. STALL must throttle the source and
        // no word may be lost or duplicated.
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (1..=8).collect();
        let (got, sent) =
            run_iface(&cfg, words.clone(), Time::from_ns(40), Time::from_us(2));
        assert_eq!(got, words);
        // The source's accepted-send times must stretch far beyond 8
        // clock cycles (stall in action).
        let t_last = sent.last().unwrap().0;
        assert!(
            t_last > Time::from_ns(300),
            "expected stall to stretch sends, last send at {t_last}"
        );
    }

    #[test]
    fn fifo_fills_to_depth_before_stalling() {
        // With an infinitely slow reader, exactly `depth` words are
        // accepted before STALL pins the source.
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (1..=8).collect();
        let (_, sent) = run_iface(&cfg, words.clone(), Time::from_us(10), Time::from_us(1));
        assert_eq!(sent.len(), cfg.fifo_depth as usize);
    }
}
