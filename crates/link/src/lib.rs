//! # sal-link — serialized asynchronous NoC links
//!
//! Gate-level implementations of the three switch-to-switch link
//! families evaluated in *Serialized Asynchronous Links for NoC*
//! (Ogg, Valli, Al-Hashimi, Yakovlev, D'Alessandro, Benini — DATE
//! 2008):
//!
//! * **I1** ([`LinkFamily::Sync`]) — the fully synchronous reference:
//!   an `m`-bit parallel link with clocked pipeline buffers (paper
//!   Fig 9, top).
//! * **I2** ([`LinkFamily::PerTransfer`]) — the proposed asynchronous
//!   serialized link with **per-transfer acknowledgement**: a
//!   sync→async FIFO interface (Fig 4), an `m→n` David-cell
//!   serializer (Fig 6a), four-phase bundled-data wire buffers, an
//!   `n→m` deserializer (Fig 6b) and an async→sync FIFO interface
//!   (Fig 5).
//! * **I3** ([`LinkFamily::PerWord`]) — the **per-word
//!   acknowledgement** variant (Fig 7/8): the serializer paces a
//!   burst of slices with a local ring oscillator and a
//!   source-synchronous `VALID` strobe, the wire repeaters are plain
//!   inverter pairs, the deserializer is a shift register, and a
//!   single acknowledge wire runs back per word.
//!
//! Where the paper fixes each family at a 32-bit word and 4:1
//! serialization ratio, this crate generates the whole design space:
//! a declarative [`LinkSpec`] — family × word width × ratio × buffer
//! depth × protection — is validated up front ([`SpecError`]) and
//! compiled to a netlist by [`generate`], lint-clean by construction.
//! The paper's three links are just [`LinkSpec::paper`] points.
//!
//! Every block is built from `sal-cells` primitives through the
//! [`CircuitBuilder`](sal_cells::CircuitBuilder), so the technology
//! model prices its area and its switching energy exactly as it
//! simulates. Block-level scopes (`tx_if`, `ser`, `wire`, `des`,
//! `rx_if`) match the power-breakdown categories of the paper's
//! Fig 14.
//!
//! The [`testbench`] module provides the synchronous switch models and
//! asynchronous handshake drivers used by unit tests and by the
//! benchmark harness, and [`measure`] runs the paper's measurement
//! protocol (worst-case flit pattern, 50 % usage window) through the
//! single entry point [`run_spec`]. Observability — transition traces,
//! handshake-latency histograms, per-block energy attribution, kernel
//! profiling — is opt-in via
//! [`MeasureOptions::with_trace`]/[`MeasureOptions::with_metrics`]
//! and surfaced in [`metrics`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod as_interface;
mod assembly;
mod config;
mod deserializer;
mod protect;
mod retry;
mod sa_interface;
mod scoreboard;
mod serializer;
mod spec;
mod sync_link;
pub mod measure;
pub mod metrics;
pub mod testbench;
mod wire_buffer;
mod word_deserializer;
mod word_serializer;

pub use as_interface::{build_as_interface, AsInterfacePorts};
pub use assembly::LinkHandles;
pub use config::{ConfigError, LinkConfig, ProtectionMode, WordRxStyle};
pub use deserializer::{build_deserializer, DeserializerPorts};
pub use measure::{
    run_spec, BlockPower, LinkRun, MeasureOptions, RunFailure, TraceMode,
};
pub use spec::{generate, LinkFamily, LinkSpec, LinkSpecBuilder, RetryConfig, SpecError};
pub use metrics::{
    BlockAttribution, BurstStats, HandshakeStats, Histogram, InFlightDepth, LinkMetrics,
    Occupancy,
};
pub use retry::RecoverySignals;
pub use sa_interface::{build_sa_interface, SaInterfacePorts};
pub use scoreboard::{check_integrity, IntegrityCounts, RecoveryCounts};
pub use serializer::{build_serializer, SerializerPorts};
pub use sync_link::{build_skid_stage, build_sync_pipeline, SyncPipelinePorts};
pub use wire_buffer::{build_wire_buffer, build_wire_buffer_chain, WireBufferPorts};
pub use word_deserializer::{
    build_word_deserializer, build_word_deserializer_demux, build_word_deserializer_early,
    WordDeserializerPorts,
};
pub use word_serializer::{build_word_serializer, WordSerializerPorts};
