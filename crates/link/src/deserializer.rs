//! The per-transfer asynchronous deserializer (paper Fig 6b).
//!
//! Rebuilds the `m`-bit flit from `m/n` slice handshakes. Each
//! arriving slice is captured in a transparent latch selected by a
//! one-hot token ring; when the last slice is present the word-level
//! request is raised downstream, and the last slice's acknowledge is
//! withheld until the downstream stage has taken the word — which is
//! what closes the flow-control loop end to end (§III/Fig 5: the
//! latch-enable C-elements are gated by the interface's flags).

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

use crate::LinkConfig;

/// Ports of the per-transfer deserializer.
#[derive(Debug, Clone, Copy)]
pub struct DeserializerPorts {
    /// Per-slice acknowledge back to the wire.
    pub ackout: SignalId,
    /// Rebuilt word to the downstream interface.
    pub dout: SignalId,
    /// Word-level request downstream.
    pub reqout: SignalId,
}

/// Builds the deserializer in its own scope.
///
/// * `din`/`reqin` — slice channel from the last wire buffer.
/// * `ackin` — word-level acknowledge from the async→sync interface.
///
/// Control:
/// * the token ring advances on each falling `reqin` edge;
/// * slice `i` latches while `reqin ∧ token_i` (transparent capture);
/// * `wordrdy = reqin_delayed ∧ token_last` raises the downstream
///   request as soon as the final slice is stable;
/// * `taken` (David cell) records the downstream acknowledge,
///   dropping the request (return-to-zero) and releasing the withheld
///   last-slice acknowledge.
pub fn build_deserializer(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    reqin: SignalId,
    ackin: SignalId,
    rstn: SignalId,
) -> DeserializerPorts {
    let k = cfg.slices();
    b.push_scope(name);

    // Matched-delayed request: latch enables settle before anything
    // derived from it fires.
    let req_d = b.buf_chain("req_dly", reqin, 3);

    // Token ring advanced when each slice handshake completes.
    let nreq = b.inv("nreq", reqin);
    let tokens = b.ring_counter("sel", nreq, Some(rstn), k);

    // Per-slice capture latches.
    let regs: Vec<SignalId> = (0..k)
        .map(|i| {
            let le = b.and2(&format!("le{i}"), reqin, tokens[i]);
            // Static-timing capture: slice data must beat its request
            // into the selected latch.
            b.sim().register_capture(din, le);
            b.dlatch(&format!("reg{i}"), din, le, None)
        })
        .collect();
    let dout = b.concat("dout", &regs);

    // Word-complete detection and downstream handshake. `delivered`
    // is a flip-flop clocked by the downstream acknowledge's rising
    // edge and held in reset while no word is pending, so it marks
    // "THIS word has been taken" even when the downstream consumer is
    // slow to return its acknowledge to zero across word boundaries.
    let wordrdy = b.and2("wordrdy", req_d, tokens[k - 1]);
    let one = b.tie("one", sal_des::Value::one(1));
    let delivered_rstn = b.and2("delivered_rstn", rstn, wordrdy);
    let delivered = b.dff("delivered", one, ackin, Some(delivered_rstn));
    let ndelivered = b.inv("ndelivered", delivered);
    let nack_down = b.inv("nack_down", ackin);
    let reqout = b.and3("reqout", wordrdy, ndelivered, nack_down);

    // Upstream acknowledge: immediate for all but the last slice; the
    // last slice acknowledges only once the word has been taken.
    let nlast = b.inv("nlast", tokens[k - 1]);
    let ack_fast = b.and2("ack_fast", req_d, nlast);
    let ack_last = b.and3("ack_last", req_d, tokens[k - 1], delivered);
    let ackout = b.or2("ackout", ack_fast, ack_last);

    b.pop_scope();
    DeserializerPorts { ackout, dout, reqout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::build_serializer;
    use crate::testbench::{
        attach_consumer, attach_producer, worst_case_pattern, HsConsumer, HsProducer,
    };
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    /// Serializer feeding deserializer directly (no wire buffers):
    /// words in must equal words out.
    fn round_trip(cfg: &LinkConfig, words: Vec<u64>, ack_delay: Time) -> Vec<u64> {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", cfg.flit_width);
        let reqin = b.input("reqin", 1);
        let ack_mid = b.input("ack_mid", 1); // deserializer -> serializer
        let ser = build_serializer(&mut b, "ser", cfg, din, reqin, ack_mid, rstn);
        let ack_end = b.input("ack_end", 1); // consumer -> deserializer
        let des = build_deserializer(&mut b, "des", cfg, ser.dout, ser.reqout, ack_end, rstn);
        // Close the slice-level acknowledge loop.
        b.buf_into("ack_loop", ack_mid, des.ackout);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        let (p, _) = HsProducer::new(reqin, din, ser.ackout, cfg.flit_width, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(des.reqout, des.dout, ack_end);
        let c = c.with_ack_delay(ack_delay);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_us(4)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        got
    }

    #[test]
    fn direct_round_trip_worst_case() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(40)), words);
    }

    #[test]
    fn direct_round_trip_many_words() {
        let cfg = LinkConfig::default();
        let words: Vec<u64> = (0..32).map(|i| 0x0101_0101u64.wrapping_mul(i) & 0xFFFF_FFFF).collect();
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(40)), words);
    }

    #[test]
    fn slow_word_consumer_backpressures_slices() {
        let cfg = LinkConfig::default();
        let words = vec![0xAAAA_5555, 0x5555_AAAA, 0x0000_FFFF];
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ns(9)), words);
    }

    #[test]
    fn two_slice_configuration() {
        let cfg = LinkConfig { slice_width: 16, ..LinkConfig::default() };
        let words = vec![0x1234_5678, 0x9ABC_DEF0];
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(40)), words);
    }

    #[test]
    fn eight_slice_configuration() {
        let cfg = LinkConfig { slice_width: 4, ..LinkConfig::default() };
        let words = vec![0xFEDC_BA98, 0x7654_3210];
        assert_eq!(round_trip(&cfg, words.clone(), Time::from_ps(40)), words);
    }
}
