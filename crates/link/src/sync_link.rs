//! The fully synchronous reference link I1 (paper Fig 1a / Fig 9 top):
//! an `m`-bit parallel data path with a valid bit, pipelined through
//! clocked buffer stages, all driven by the global switch clock.
//!
//! Each stage is an *elastic* (skid) buffer: an always-clocked output
//! register plus a clock-gated skid register, so the link supports the
//! VALID/STALL flow control of the paper's Fig 2 without ever dropping
//! a flit when the stall wave propagates upstream one stage per cycle.
//! This two-registers-per-stage structure is also what the paper's
//! Table 1 area for I1 implies (a plain single register per stage
//! could not honour STALL).

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

use crate::LinkConfig;

/// Ports and bookkeeping of the synchronous pipeline.
#[derive(Debug, Clone)]
pub struct SyncPipelinePorts {
    /// Flit output at the far switch.
    pub flit_out: SignalId,
    /// Valid output at the far switch.
    pub valid_out: SignalId,
    /// Backpressure to the sending switch.
    pub stall_out: SignalId,
    /// Backpressure input from the receiving switch (pre-declared;
    /// drive it from the sink).
    pub stall_in: SignalId,
    /// Flip-flop bits hanging on the free-running clock (the skid
    /// registers are clock-gated and excluded).
    pub clocked_bits: u32,
}

/// Builds one elastic (skid) buffer stage in the *current* scope:
/// an always-clocked output register plus a clock-gated skid register.
///
/// `data_in` carries payload and a valid bit in its MSB; `stall_down`
/// is the downstream not-ready level (pre-declare it and drive later
/// when it comes from logic built afterwards). Returns the registered
/// output bus and the upstream stall (high while the skid register
/// holds a deferred word). Lossless under any stall pattern: the skid
/// absorbs the word in flight when the stall wave arrives.
pub fn build_skid_stage(
    b: &mut CircuitBuilder<'_>,
    clk: SignalId,
    rstn: SignalId,
    data_in: SignalId,
    stall_down: SignalId,
) -> (SignalId, SignalId) {
    let w = {
        // Width of the bus including its valid MSB.
        let sim = b.sim();
        sim.signal_width(data_in)
    };
    let m = w - 1;
    let valid = b.slice("valid_in", data_in, m, 1);

    let use_skid = b.input("use_skid", 1);
    let nstall = b.inv("nstall", stall_down);
    let out_q = b.input("out_q", w);
    let valid_q = b.slice("valid_q", out_q, m, 1);
    let nvalidq = b.inv("nvalidq", valid_q);
    let out_en = b.or2("out_en", nstall, nvalidq);
    let nuse = b.inv("nuse", use_skid);
    let press = b.and2("press", stall_down, valid_q);
    let skid_en = b.and3("skid_en", nuse, valid, press);
    let nout_en = b.inv("nout_en", out_en);
    let hold = b.and2("hold", use_skid, nout_en);
    let use_next = b.or2("use_next", hold, skid_en);
    b.dff_into("use_skid_ff", use_skid, use_next, clk, Some(rstn));

    let skid_q = b.input("skid_q", w);
    let skid_d = b.mux2("skid_d", skid_en, skid_q, data_in);
    b.dff_into("skid_ff", skid_q, skid_d, clk, Some(rstn));

    let src = b.mux2("src", use_skid, data_in, skid_q);
    let out_d = b.mux2("out_d", out_en, out_q, src);
    b.dff_into("out_ff", out_q, out_d, clk, Some(rstn));

    (out_q, use_skid)
}

/// Builds `cfg.buffers` elastic pipeline stages inside scope `name`,
/// carrying `flit_in`/`valid_in` across the wire. Each of the
/// `buffers + 1` wire segments contributes its switching load to the
/// signal that drives it.
pub fn build_sync_pipeline(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    clk: SignalId,
    rstn: SignalId,
    flit_in: SignalId,
    valid_in: SignalId,
) -> SyncPipelinePorts {
    let m = cfg.flit_width;
    b.push_scope(name);
    let seg = cfg.segment_um();

    let nstages = cfg.buffers as usize;
    // Pre-declare the stall wires (they run against the data flow).
    // stalls[k] is driven by stage k (k < nstages) or by the receiving
    // switch (k == nstages); stage k listens to stalls[k + 1].
    let stalls: Vec<SignalId> =
        (0..=nstages).map(|k| b.input(&format!("stall{k}"), 1)).collect();

    let mut flit = flit_in;
    let mut valid = valid_in;
    b.add_wire_load(flit, seg);
    b.add_wire_load(valid, seg);
    let mut clocked_bits = 0u32;
    for k in 0..nstages {
        b.push_scope(&format!("buf{k}"));
        let stall_down = stalls[k + 1];
        let data_in = b.concat("din", &[flit, valid]);
        let (out_q, use_skid) = build_skid_stage(b, clk, rstn, data_in, stall_down);
        // This stage's upstream stall is its skid-occupancy flag.
        b.buf_into("stall_drv", stalls[k], use_skid);
        flit = b.slice("flit_q", out_q, 0, m);
        valid = b.slice("valid_out", out_q, m, 1);
        // Only the output register and control FF hang on the clock.
        clocked_bits += m as u32 + 2;
        b.add_wire_load(flit, seg);
        b.add_wire_load(valid, seg);
        b.pop_scope();
    }
    b.pop_scope();
    SyncPipelinePorts {
        flit_out: flit,
        valid_out: valid,
        stall_out: stalls[0],
        stall_in: stalls[nstages],
        clocked_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{
        attach_sync_sink, attach_sync_source, worst_case_pattern, SyncFlitSink, SyncFlitSource,
    };
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn run_pipeline(
        cfg: &LinkConfig,
        words: Vec<u64>,
        stall_fn: Box<dyn FnMut(u64) -> bool>,
    ) -> (Vec<(Time, u64)>, u32) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", cfg.clk_period);
        let flit_in = b.input("flit_in", cfg.flit_width);
        let valid_in = b.input("valid_in", 1);
        let ports = build_sync_pipeline(&mut b, "i1", cfg, clk, rstn, flit_in, valid_in);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        let (src, _) = SyncFlitSource::new(
            clk,
            ports.stall_out,
            flit_in,
            valid_in,
            cfg.flit_width,
            words.clone(),
        );
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        let (snk, rx) = SyncFlitSink::with_stall_fn(
            clk,
            ports.valid_out,
            ports.flit_out,
            ports.stall_in,
            stall_fn,
        );
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(cfg.clk_period * (4 * words.len() as u64 + cfg.buffers as u64 + 12))
            .unwrap();
        let got = rx.borrow().clone();
        (got, ports.clocked_bits)
    }

    #[test]
    fn pipeline_delivers_in_order_at_full_rate() {
        let cfg = LinkConfig::default();
        let words = worst_case_pattern(4, 32);
        let (got, bits) = run_pipeline(&cfg, words.clone(), Box::new(|_| false));
        let data: Vec<u64> = got.iter().map(|&(_, w)| w).collect();
        assert_eq!(data, words);
        assert_eq!(bits, 4 * 34);
        let times: Vec<Time> = got.iter().map(|&(t, _)| t).collect();
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], cfg.clk_period, "full throughput expected");
        }
    }

    #[test]
    fn throughput_at_several_clocks() {
        for period_ns in [10u64, 5, 3] {
            let cfg = LinkConfig {
                clk_period: Time::from_ns(period_ns),
                buffers: 2,
                ..LinkConfig::default()
            };
            let words: Vec<u64> = (1..=6).collect();
            let (got, _) = run_pipeline(&cfg, words.clone(), Box::new(|_| false));
            let data: Vec<u64> = got.iter().map(|&(_, w)| w).collect();
            assert_eq!(data, words);
        }
    }

    #[test]
    fn stall_waves_lose_nothing() {
        // The sink stalls in bursts; the skid buffers must absorb the
        // in-flight flits and deliver every word exactly once.
        let cfg = LinkConfig { buffers: 4, ..LinkConfig::default() };
        let words: Vec<u64> = (1..=12).collect();
        let (got, _) = run_pipeline(
            &cfg,
            words.clone(),
            Box::new(|c| (c / 3) % 2 == 0), // stall 3 cycles, go 3 cycles
        );
        let data: Vec<u64> = got.iter().map(|&(_, w)| w).collect();
        assert_eq!(data, words);
    }

    #[test]
    fn hard_stall_backpressures_to_source() {
        // Sink refuses everything: nothing may be delivered.
        let cfg = LinkConfig { buffers: 2, ..LinkConfig::default() };
        let words: Vec<u64> = (1..=6).collect();
        let (got, _) = run_pipeline(&cfg, words.clone(), Box::new(|_| true));
        assert!(got.is_empty());
    }
}
