//! 2-D mesh topology and dimension-ordered routing.

use std::fmt;

/// A node (switch + attached core) in the mesh, identified by its
/// linear index (`y * cols + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A router port direction. `Local` is the core's
/// injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger y.
    South,
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
    /// The attached core.
    Local,
}

impl Direction {
    /// All five port directions.
    pub const ALL: [Direction; 5] =
        [Direction::North, Direction::South, Direction::East, Direction::West, Direction::Local];

    /// The four inter-router directions (everything but `Local`).
    pub const CARDINAL: [Direction; 4] =
        [Direction::North, Direction::South, Direction::East, Direction::West];

    /// Index of this direction in per-port arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The port on the neighbouring router that faces back at this one.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

/// A `cols × rows` 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Mesh {
    /// Number of columns (x extent).
    pub cols: u16,
    /// Number of rows (y extent).
    pub rows: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols >= 1 && rows >= 1, "mesh dimensions must be at least 1x1");
        assert!(
            u16::try_from((cols as u32) * (rows as u32)).is_ok(),
            "mesh too large"
        );
        Mesh { cols, rows }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// `(x, y)` coordinates of a node.
    pub fn coords(&self, n: NodeId) -> (u16, u16) {
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// Node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node(&self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "coordinates outside mesh");
        NodeId(y * self.cols + x)
    }

    /// The neighbour of `n` in `dir`, if any.
    pub fn neighbor(&self, n: NodeId, dir: Direction) -> Option<NodeId> {
        let (x, y) = self.coords(n);
        match dir {
            Direction::North => (y > 0).then(|| self.node(x, y - 1)),
            Direction::South => (y + 1 < self.rows).then(|| self.node(x, y + 1)),
            Direction::East => (x + 1 < self.cols).then(|| self.node(x + 1, y)),
            Direction::West => (x > 0).then(|| self.node(x - 1, y)),
            Direction::Local => None,
        }
    }

    /// Dimension-ordered (XY) routing: the output port a flit at `at`
    /// takes toward `dst` — X first, then Y, then eject. Deadlock-free
    /// on a mesh.
    pub fn route_xy(&self, at: NodeId, dst: NodeId) -> Direction {
        let (x, y) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if dx > x {
            Direction::East
        } else if dx < x {
            Direction::West
        } else if dy > y {
            Direction::South
        } else if dy < y {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Manhattan hop distance (router-to-router) between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// Iterates over all directed inter-router channels as
    /// `(upstream node, direction)`, in node-then-direction order.
    pub fn directed_channels(&self) -> impl Iterator<Item = (NodeId, Direction)> + '_ {
        let mesh = *self;
        self.node_ids().flat_map(move |n| {
            Direction::CARDINAL
                .into_iter()
                .filter(move |&d| mesh.neighbor(n, d).is_some())
                .map(move |d| (n, d))
        })
    }

    /// Number of unidirectional inter-router channels in the mesh.
    pub fn channel_count(&self) -> usize {
        let horiz = (self.cols as usize - 1) * self.rows as usize;
        let vert = (self.rows as usize - 1) * self.cols as usize;
        2 * (horiz + vert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let m = Mesh::new(4, 3);
        for n in m.node_ids() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node(x, y), n);
        }
        assert_eq!(m.nodes(), 12);
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh::new(3, 3);
        let corner = m.node(0, 0);
        assert_eq!(m.neighbor(corner, Direction::North), None);
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(m.neighbor(corner, Direction::East), Some(m.node(1, 0)));
        assert_eq!(m.neighbor(corner, Direction::South), Some(m.node(0, 1)));
        let mid = m.node(1, 1);
        for d in [Direction::North, Direction::South, Direction::East, Direction::West] {
            assert!(m.neighbor(mid, d).is_some());
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh::new(4, 4);
        let src = m.node(0, 0);
        let dst = m.node(3, 3);
        assert_eq!(m.route_xy(src, dst), Direction::East);
        let mid = m.node(3, 0);
        assert_eq!(m.route_xy(mid, dst), Direction::South);
        assert_eq!(m.route_xy(dst, dst), Direction::Local);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = Mesh::new(5, 4);
        for src in m.node_ids() {
            for dst in m.node_ids() {
                let mut at = src;
                let mut steps = 0;
                while at != dst {
                    let dir = m.route_xy(at, dst);
                    at = m.neighbor(at, dir).expect("route led off the mesh");
                    steps += 1;
                    assert!(steps <= 20, "routing loop {src} -> {dst}");
                }
                assert_eq!(steps, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn channel_count_matches_formula() {
        let m = Mesh::new(4, 4);
        // 2 × (3×4 + 3×4) = 48 unidirectional channels.
        assert_eq!(m.channel_count(), 48);
    }

    #[test]
    fn directed_channels_enumerates_every_channel_once() {
        let m = Mesh::new(4, 3);
        let chans: Vec<_> = m.directed_channels().collect();
        assert_eq!(chans.len(), m.channel_count());
        for &(n, d) in &chans {
            assert!(m.neighbor(n, d).is_some());
        }
        let mut dedup = chans.clone();
        dedup.sort_by_key(|&(n, d)| (n.0, d.index()));
        dedup.dedup();
        assert_eq!(dedup.len(), chans.len());
    }

    #[test]
    fn opposite_directions() {
        for d in [Direction::North, Direction::South, Direction::East, Direction::West] {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }
}
