//! Synthetic traffic patterns.

use rand::Rng;

use crate::{Mesh, NodeId};

/// Standard synthetic destination patterns for NoC evaluation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrafficPattern {
    /// Every node sends to a uniformly random other node.
    UniformRandom,
    /// Node `(x, y)` sends to `(y, x)` (requires a square mesh);
    /// stresses one diagonal of the bisection.
    Transpose,
    /// Node `i` sends to the node with the bit-complement index.
    BitComplement,
    /// A fraction of traffic targets one hot node, the rest uniform.
    Hotspot {
        /// The hot node.
        node: NodeId,
        /// Fraction of packets aimed at it (0..=1 scaled by 1000,
        /// i.e. permille, to keep the type `Copy + Eq`-friendly).
        permille: u16,
    },
}

impl TrafficPattern {
    /// Picks a destination for a packet from `src`. Never returns
    /// `src` itself (self-traffic is re-rolled or remapped).
    pub fn destination<R: Rng>(&self, mesh: &Mesh, src: NodeId, rng: &mut R) -> NodeId {
        let n = mesh.nodes() as u16;
        match *self {
            TrafficPattern::UniformRandom => {
                if n == 1 {
                    return src;
                }
                loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != src {
                        return d;
                    }
                }
            }
            TrafficPattern::Transpose => {
                assert_eq!(mesh.cols, mesh.rows, "transpose needs a square mesh");
                let (x, y) = mesh.coords(src);
                let d = mesh.node(y, x);
                if d == src {
                    // Diagonal nodes have no transpose partner; fall
                    // back to uniform so they still contribute load.
                    TrafficPattern::UniformRandom.destination(mesh, src, rng)
                } else {
                    d
                }
            }
            TrafficPattern::BitComplement => {
                let bits = 16 - (n - 1).leading_zeros();
                let mask = ((1u32 << bits) - 1) as u16;
                let mut d = (!src.0) & mask;
                if d >= n || NodeId(d) == src {
                    d = (src.0 + n / 2) % n;
                }
                if NodeId(d) == src {
                    return TrafficPattern::UniformRandom.destination(mesh, src, rng);
                }
                NodeId(d)
            }
            TrafficPattern::Hotspot { node, permille } => {
                if node != src && rng.gen_range(0..1000) < permille {
                    node
                } else {
                    TrafficPattern::UniformRandom.destination(mesh, src, rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_self() {
        let mesh = Mesh::new(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for src in mesh.node_ids() {
            for _ in 0..50 {
                assert_ne!(TrafficPattern::UniformRandom.destination(&mesh, src, &mut rng), src);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh::new(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let src = mesh.node(1, 3);
        let d = TrafficPattern::Transpose.destination(&mesh, src, &mut rng);
        assert_eq!(d, mesh.node(3, 1));
        // Diagonal falls back but never self.
        let diag = mesh.node(2, 2);
        let d2 = TrafficPattern::Transpose.destination(&mesh, diag, &mut rng);
        assert_ne!(d2, diag);
    }

    #[test]
    fn hotspot_biases_toward_node() {
        let mesh = Mesh::new(4, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let hot = mesh.node(0, 0);
        let pat = TrafficPattern::Hotspot { node: hot, permille: 500 };
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pat.destination(&mesh, mesh.node(3, 3), &mut rng) == hot {
                hits += 1;
            }
        }
        // ~50% plus the uniform share; definitely above 40%.
        assert!(hits > trials * 4 / 10, "hotspot hits {hits}/{trials}");
    }

    #[test]
    fn bit_complement_is_deterministic_and_not_self() {
        let mesh = Mesh::new(4, 4);
        let mut rng = StdRng::seed_from_u64(3);
        for src in mesh.node_ids() {
            let d = TrafficPattern::BitComplement.destination(&mesh, src, &mut rng);
            assert_ne!(d, src);
            assert!((d.0 as usize) < mesh.nodes());
        }
    }
}
