//! End-to-end flows over the mesh: windowed senders, cumulative acks,
//! retransmission timers, AIMD congestion control, and a progress
//! watchdog.
//!
//! The lossy channels of [`crate::fault`] retry, resync and degrade
//! *locally*; this module adds the layer that survives what the links
//! cannot hide. Each [`FlowSpec`] is a reliable byte-stream stand-in:
//! a source core sends `packets` sequence-numbered payload packets to
//! a destination core, which delivers them in order exactly once and
//! returns cumulative acknowledgements as ordinary single-flit
//! packets riding the reverse mesh paths (acks share the network with
//! the data and feel the same storms — there is no magic side
//! channel).
//!
//! The sender machinery is the classical reliable-transport kernel:
//!
//! * **Windowed transmission** — at most `⌊cwnd⌋` unacknowledged
//!   packets in flight.
//! * **AIMD** — each cumulative ack that advances grows `cwnd` by
//!   `acked/cwnd` (≈ +1 packet per round trip); each retransmission
//!   timeout halves it (multiplicative decrease, floor 1).
//! * **Retransmission timers with exponential backoff** — the
//!   retransmit timeout adapts to the measured round trip
//!   (Jacobson/Karn: smoothed RTT + 4× deviation, samples only from
//!   unretransmitted packets) and doubles per consecutive timeout.
//! * **End-to-end integrity** — every payload carries a
//!   seed-derived check word; undetected channel corruption flips
//!   payload bits, the receiver recomputes the expected word, drops
//!   the damaged packet, and lets the retransmission machinery heal
//!   the hole. Acks carry a self-check so a corrupted ack is dropped
//!   rather than trusted. Duplicates (a retransmission racing its own
//!   ack) are absorbed by the receiver's out-of-order buffer: the
//!   application sees every sequence number exactly once.
//!
//! Under [`crate::RoutingMode::Adaptive`] this layer also recovers
//! the packets a reconfiguration epoch strands: a worm severed by a
//! dying channel simply never acks, the retransmission timer fires,
//! and the resent copy takes the rebuilt routes — the receiver's
//! dedup keeps delivery exactly-once across the reroute (see
//! DESIGN.md §5h).
//!
//! The [`ProgressWatchdog`] closes the loop on the failure modes the
//! protocol *cannot* heal (a permanently failed channel on the only
//! path static XY ever offers): every `interval` cycles it compares
//! cumulative acks against the last check and, when flows starve,
//! emits a [`StallReport`] naming the starved flows (with their whole
//! sender state) and the stalled channels. A run whose every flow
//! stops progressing for [`WatchdogConfig::hard_stall_checks`]
//! consecutive checks is declared livelocked and aborted — diagnosed,
//! never hung.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Direction, NodeId};

/// Flow identifier (index into the flow table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FlowId(pub u32);

/// One end-to-end flow: `packets` reliable, in-order payload packets
/// from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FlowSpec {
    /// Source core.
    pub src: NodeId,
    /// Destination core.
    pub dst: NodeId,
    /// Payload packets to deliver.
    pub packets: u64,
}

/// Shared transport knobs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowParams {
    /// Initial congestion window, packets.
    pub init_cwnd: f64,
    /// Window cap, packets.
    pub max_cwnd: f64,
    /// Initial retransmit timeout before any RTT sample, cycles.
    pub rto_init: u64,
    /// Lower clamp on the adaptive RTO, cycles.
    pub rto_min: u64,
    /// Upper clamp on the backed-off RTO, cycles.
    pub rto_max: u64,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            init_cwnd: 2.0,
            max_cwnd: 32.0,
            rto_init: 400,
            rto_min: 64,
            rto_max: 16_384,
        }
    }
}

/// Progress-watchdog knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogConfig {
    /// Cycles between progress checks.
    pub interval: u64,
    /// Consecutive checks with zero progress on *every* incomplete
    /// flow before the run is declared livelocked.
    pub hard_stall_checks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { interval: 1_024, hard_stall_checks: 3 }
    }
}

/// A complete flow workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowConfig {
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Transport knobs shared by all flows.
    pub params: FlowParams,
    /// Watchdog knobs.
    pub watchdog: WatchdogConfig,
}

impl FlowConfig {
    /// A workload with default transport and watchdog parameters.
    ///
    /// # Panics
    ///
    /// Panics if any flow is empty or self-addressed.
    pub fn new(flows: Vec<FlowSpec>) -> Self {
        for (i, f) in flows.iter().enumerate() {
            assert!(f.packets >= 1, "flow {i} has no payload");
            assert!(f.src != f.dst, "flow {i} is self-addressed ({})", f.src);
        }
        FlowConfig { flows, params: FlowParams::default(), watchdog: WatchdogConfig::default() }
    }
}

/// The flow-level content of a network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTag {
    /// A payload packet.
    Payload {
        /// Owning flow.
        flow: FlowId,
        /// Sequence number, 0-based.
        seq: u64,
        /// The payload check word ([`payload_word`]).
        payload: u64,
    },
    /// A cumulative acknowledgement.
    Ack {
        /// Owning flow.
        flow: FlowId,
        /// Next expected sequence number at the receiver.
        cum: u64,
        /// Self-check word ([`ack_check`]).
        check: u64,
    },
}

/// splitmix64 — bijective 64-bit mixer, the integrity oracle's core.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic payload word of `(flow, seq)`: sender emits it,
/// receiver recomputes it — any in-flight bit flip breaks equality.
pub fn payload_word(flow: FlowId, seq: u64) -> u64 {
    splitmix64((u64::from(flow.0) << 40) ^ seq)
}

/// The ack self-check word: `splitmix64` is a bijection, so any
/// corruption of `cum` changes the expected check — a single shared
/// bit flip can never stay self-consistent.
pub fn ack_check(flow: FlowId, cum: u64) -> u64 {
    splitmix64((u64::from(flow.0) << 40) ^ cum ^ 0x5DEE_CE66_D1CE_5EED)
}

/// What the engine wants injected into the mesh this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSend {
    /// Injecting node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Flow-level content.
    pub tag: FlowTag,
}

/// Per-flow transport counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct FlowCounts {
    /// Payload packets first-transmitted.
    pub sent: u64,
    /// Payload retransmissions.
    pub retx: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Acks received that advanced nothing (old or duplicate).
    pub stale_acks: u64,
    /// Acks dropped for failing their self-check (corrupted).
    pub corrupt_acks: u64,
    /// Duplicate payload receptions absorbed at the receiver.
    pub dup_rx: u64,
    /// Payloads dropped at the receiver for failing the end-to-end
    /// check (undetected channel corruption caught here).
    pub corrupt_payloads: u64,
    /// Corrupted payloads the receiver *accepted* — must stay zero;
    /// a nonzero value means the end-to-end check has a hole.
    pub accepted_corrupt: u64,
    /// Payload packets delivered to the application more than once —
    /// must stay zero.
    pub dup_delivered: u64,
}

/// Sender-side state of one flow.
#[derive(Debug)]
struct Sender {
    spec: FlowSpec,
    /// Congestion window, packets (AIMD).
    cwnd: f64,
    /// Next fresh sequence number.
    next_seq: u64,
    /// Cumulative ack: everything below is delivered.
    cum_acked: u64,
    /// In-flight metadata: seq → (first_sent, retransmissions).
    outstanding: BTreeMap<u64, (u64, u32)>,
    /// Smoothed RTT (cycles), once sampled.
    srtt: Option<f64>,
    rttvar: f64,
    /// Base adaptive RTO, cycles.
    rto: u64,
    /// Consecutive-timeout exponent (exponential backoff).
    backoff: u32,
    /// Absolute deadline of the retransmit timer, if armed.
    deadline: Option<u64>,
    /// Cycle the flow completed (all packets acked), if it did.
    completed_at: Option<u64>,
    counts: FlowCounts,
}

impl Sender {
    fn new(spec: FlowSpec, p: &FlowParams) -> Self {
        Sender {
            spec,
            cwnd: p.init_cwnd.max(1.0),
            next_seq: 0,
            cum_acked: 0,
            outstanding: BTreeMap::new(),
            srtt: None,
            rttvar: 0.0,
            rto: p.rto_init,
            backoff: 0,
            deadline: None,
            completed_at: None,
            counts: FlowCounts::default(),
        }
    }

    fn complete(&self) -> bool {
        self.cum_acked >= self.spec.packets
    }

    /// The effective (backed-off) RTO.
    fn rto_eff(&self, p: &FlowParams) -> u64 {
        self.rto.saturating_shl_cap(self.backoff).min(p.rto_max)
    }

    fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1)
    }

    /// Timer + window pass: returns `(seq, is_retx)` to transmit now.
    fn poll(&mut self, now: u64, p: &FlowParams) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        if self.complete() {
            return out;
        }
        // 1. Timer: retransmit the earliest unacked packet, halve the
        //    window, double the horizon.
        if self.deadline.is_some_and(|d| d <= now) {
            self.counts.timeouts += 1;
            self.cwnd = (self.cwnd / 2.0).max(1.0);
            self.backoff = (self.backoff + 1).min(16);
            if let Some((&seq, &mut (first, ref mut retx))) =
                self.outstanding.iter_mut().next()
            {
                debug_assert_eq!(seq, self.cum_acked, "earliest unacked is the cumulative edge");
                let _ = first;
                *retx += 1;
                self.counts.retx += 1;
                out.push((seq, true));
            }
            self.deadline = Some(now + self.rto_eff(p));
        }
        // 2. Window space: fresh transmissions.
        while self.next_seq < self.spec.packets
            && self.next_seq - self.cum_acked < self.window()
        {
            self.outstanding.insert(self.next_seq, (now, 0));
            out.push((self.next_seq, false));
            self.next_seq += 1;
            self.counts.sent += 1;
            if self.deadline.is_none() {
                self.deadline = Some(now + self.rto_eff(p));
            }
        }
        out
    }

    /// Processes a (validated) cumulative ack.
    fn on_ack(&mut self, cum: u64, now: u64, p: &FlowParams) {
        if cum <= self.cum_acked {
            self.counts.stale_acks += 1;
            return;
        }
        let cum = cum.min(self.spec.packets);
        // Karn: sample RTT only from an unretransmitted packet.
        if let Some(&(first_sent, retx)) = self.outstanding.get(&(cum - 1)) {
            if retx == 0 {
                let sample = (now - first_sent) as f64;
                match self.srtt {
                    None => {
                        self.srtt = Some(sample);
                        self.rttvar = sample / 2.0;
                    }
                    Some(srtt) => {
                        self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                        self.srtt = Some(0.875 * srtt + 0.125 * sample);
                    }
                }
                let rto = self.srtt.unwrap_or(sample) + 4.0 * self.rttvar;
                self.rto = (rto as u64).clamp(p.rto_min, p.rto_max);
            }
        }
        let acked = cum - self.cum_acked;
        self.outstanding = self.outstanding.split_off(&cum);
        self.cum_acked = cum;
        self.backoff = 0;
        // Additive increase: ≈ +1 packet per round trip.
        self.cwnd = (self.cwnd + acked as f64 / self.cwnd).min(p.max_cwnd);
        if self.complete() {
            self.completed_at = Some(now);
            self.deadline = None;
        } else if self.outstanding.is_empty() {
            self.deadline = None;
        } else {
            self.deadline = Some(now + self.rto_eff(p));
        }
    }
}

/// Saturating `u64 << u32` capped at `u64::MAX`.
trait ShlCap {
    fn saturating_shl_cap(self, by: u32) -> u64;
}

impl ShlCap for u64 {
    fn saturating_shl_cap(self, by: u32) -> u64 {
        if by >= 64 || self.leading_zeros() < by {
            u64::MAX
        } else {
            self << by
        }
    }
}

/// Receiver-side state of one flow.
#[derive(Debug, Default)]
struct Receiver {
    /// Next expected sequence number (everything below delivered).
    cum: u64,
    /// Out-of-order packets parked above the cumulative edge.
    ooo: BTreeSet<u64>,
    /// Sequence numbers handed to the application (for the
    /// exactly-once audit).
    delivered: u64,
}

impl Receiver {
    /// Accepts a payload; returns the cumulative ack to send back.
    fn on_payload(&mut self, seq: u64, counts: &mut FlowCounts) -> u64 {
        if seq < self.cum || self.ooo.contains(&seq) {
            counts.dup_rx += 1;
            return self.cum;
        }
        self.ooo.insert(seq);
        while self.ooo.remove(&self.cum) {
            self.cum += 1;
            self.delivered += 1;
        }
        self.cum
    }
}

/// One starved flow in a [`StallReport`], with the sender state a
/// post-mortem needs.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct StarvedFlow {
    /// Which flow.
    pub flow: FlowId,
    /// Endpoints.
    pub src: NodeId,
    /// Endpoints.
    pub dst: NodeId,
    /// Cumulative ack when the watchdog fired.
    pub cum_acked: u64,
    /// Of how many packets.
    pub packets: u64,
    /// Congestion window at the time.
    pub cwnd: f64,
    /// Effective (backed-off) RTO, cycles.
    pub rto_eff: u64,
    /// Consecutive-timeout backoff exponent.
    pub backoff: u32,
    /// Total retransmissions so far.
    pub retx: u64,
}

/// One stalled channel in a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct StalledChannel {
    /// Upstream node of the channel.
    pub from: NodeId,
    /// Direction it points.
    pub dir: Direction,
    /// Channel state label (`up`/`resyncing`/`degraded`/`failed`).
    pub state: &'static str,
    /// Flits stuck in flight.
    pub queued: usize,
    /// Last cycle the channel delivered anything.
    pub last_delivery: u64,
}

/// A watchdog finding: who starved and what stalled.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct StallReport {
    /// Cycle the check fired.
    pub cycle: u64,
    /// Incomplete flows whose cumulative ack did not advance over the
    /// last interval.
    pub starved: Vec<StarvedFlow>,
    /// Channels that look wedged (failed, or queued without
    /// delivering for a whole interval).
    pub stalled_channels: Vec<StalledChannel>,
    /// True if this check declared the run livelocked.
    pub hard: bool,
}

/// Final per-flow statistics.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FlowStats {
    /// Which flow.
    pub flow: FlowId,
    /// Endpoints and size.
    pub spec: FlowSpec,
    /// Packets delivered in order to the application.
    pub delivered: u64,
    /// Packets cumulatively acked at the sender.
    pub acked: u64,
    /// Cycle the flow completed, if it did.
    pub completed_at: Option<u64>,
    /// In-order payload packets delivered per cycle of the whole run.
    pub goodput_ppc: f64,
    /// Final congestion window.
    pub final_cwnd: f64,
    /// Final smoothed RTT, cycles (`NaN` before the first sample —
    /// serialised as null-ish by the consumer).
    pub srtt: Option<f64>,
    /// Transport counters.
    pub counts: FlowCounts,
}

/// Jain's fairness index over nonnegative allocations:
/// `(Σx)² / (n·Σx²)`; 1 is perfectly fair, `1/n` is a single hog.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return f64::NAN;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// The engine driving every flow of a network run. Owned by
/// [`crate::Network`] in flow mode; all methods are deterministic.
#[derive(Debug)]
pub struct FlowEngine {
    params: FlowParams,
    watchdog: WatchdogConfig,
    senders: Vec<Sender>,
    receivers: Vec<Receiver>,
    counts: Vec<FlowCounts>,
    /// Watchdog snapshot: cumulative acks at the last check.
    last_cum: Vec<u64>,
    /// Starved set at the last reported stall (dedup).
    last_starved: Vec<FlowId>,
    no_progress_checks: u32,
    stalls: Vec<StallReport>,
    livelocked: bool,
}

impl FlowEngine {
    /// Builds the engine.
    pub fn new(cfg: &FlowConfig) -> Self {
        let senders: Vec<Sender> =
            cfg.flows.iter().map(|&s| Sender::new(s, &cfg.params)).collect();
        let n = senders.len();
        FlowEngine {
            params: cfg.params,
            watchdog: cfg.watchdog,
            senders,
            receivers: (0..n).map(|_| Receiver::default()).collect(),
            counts: vec![FlowCounts::default(); n],
            last_cum: vec![0; n],
            last_starved: Vec::new(),
            no_progress_checks: 0,
            stalls: Vec::new(),
            livelocked: false,
        }
    }

    /// Watchdog check cadence, cycles.
    pub fn watchdog_interval(&self) -> u64 {
        self.watchdog.interval
    }

    /// True once every flow is fully acked.
    pub fn all_complete(&self) -> bool {
        self.senders.iter().all(Sender::complete)
    }

    /// True once the watchdog declared livelock.
    pub fn livelocked(&self) -> bool {
        self.livelocked
    }

    /// Timer + window pass over every sender; the network injects the
    /// returned packets this cycle (flow order fixes determinism).
    pub fn poll(&mut self, now: u64) -> Vec<FlowSend> {
        let mut out = Vec::new();
        for (i, s) in self.senders.iter_mut().enumerate() {
            let flow = FlowId(i as u32);
            for (seq, is_retx) in s.poll(now, &self.params) {
                let _ = is_retx;
                out.push(FlowSend {
                    from: s.spec.src,
                    to: s.spec.dst,
                    tag: FlowTag::Payload { flow, seq, payload: payload_word(flow, seq) },
                });
            }
            self.counts[i].sent = s.counts.sent;
            self.counts[i].retx = s.counts.retx;
            self.counts[i].timeouts = s.counts.timeouts;
            self.counts[i].stale_acks = s.counts.stale_acks;
        }
        out
    }

    /// Handles a packet ejected at `node`; `xor` is the accumulated
    /// undetected-corruption bit-flip mask the channels applied to the
    /// packet's payload (0 = intact). Returns the ack to send back,
    /// if any.
    pub fn on_delivery(&mut self, node: NodeId, tag: FlowTag, xor: u64, now: u64) -> Option<FlowSend> {
        match tag {
            FlowTag::Payload { flow, seq, payload } => {
                let i = flow.0 as usize;
                let spec = self.senders[i].spec;
                debug_assert_eq!(node, spec.dst, "payload ejected at the wrong core");
                let received = payload ^ xor;
                if received != payload_word(flow, seq) {
                    // End-to-end check caught in-flight corruption:
                    // drop; the retransmission timer heals the hole.
                    self.counts[i].corrupt_payloads += 1;
                } else if xor != 0 {
                    // Structurally unreachable (xor≠0 flips the word);
                    // counted so the campaign's headline claim is a
                    // measurement, not an assumption.
                    self.counts[i].accepted_corrupt += 1;
                } else {
                    let before = self.receivers[i].delivered;
                    let already = seq < self.receivers[i].cum || self.receivers[i].ooo.contains(&seq);
                    let _ = self.receivers[i].on_payload(seq, &mut self.counts[i]);
                    let after = self.receivers[i].delivered;
                    if already && after > before {
                        self.counts[i].dup_delivered += 1;
                    }
                }
                // Ack the current cumulative edge regardless: a dup or
                // a drop still tells the sender where the edge is.
                let cum = self.receivers[i].cum;
                Some(FlowSend {
                    from: spec.dst,
                    to: spec.src,
                    tag: FlowTag::Ack { flow, cum, check: ack_check(flow, cum) },
                })
            }
            FlowTag::Ack { flow, cum, check } => {
                let i = flow.0 as usize;
                debug_assert_eq!(node, self.senders[i].spec.src, "ack ejected at the wrong core");
                let received_cum = cum ^ xor;
                if ack_check(flow, received_cum) != check {
                    // Corrupted ack: self-check failed — never trust it.
                    self.counts[i].corrupt_acks += 1;
                } else {
                    self.senders[i].on_ack(received_cum, now, &self.params);
                }
                None
            }
        }
    }

    /// Progress check: `stalled_channels` is the network's channel
    /// diagnosis (failed / long-idle channels with queued flits).
    /// Records a [`StallReport`] when incomplete flows starved, and
    /// declares livelock after
    /// [`WatchdogConfig::hard_stall_checks`] checks with zero global
    /// progress.
    pub fn watchdog_check(&mut self, now: u64, stalled_channels: Vec<StalledChannel>) {
        let mut starved = Vec::new();
        let mut any_progress = false;
        for (i, s) in self.senders.iter().enumerate() {
            if s.cum_acked > self.last_cum[i] {
                any_progress = true;
            } else if !s.complete() {
                starved.push(StarvedFlow {
                    flow: FlowId(i as u32),
                    src: s.spec.src,
                    dst: s.spec.dst,
                    cum_acked: s.cum_acked,
                    packets: s.spec.packets,
                    cwnd: s.cwnd,
                    rto_eff: s.rto_eff(&self.params),
                    backoff: s.backoff,
                    retx: s.counts.retx,
                });
            }
            self.last_cum[i] = s.cum_acked;
        }
        if any_progress {
            self.no_progress_checks = 0;
        } else if !self.all_complete() {
            self.no_progress_checks += 1;
        }
        let hard = self.no_progress_checks >= self.watchdog.hard_stall_checks;
        if hard {
            self.livelocked = true;
        }
        let starved_ids: Vec<FlowId> = starved.iter().map(|f| f.flow).collect();
        if !starved.is_empty() && (hard || starved_ids != self.last_starved) {
            self.last_starved = starved_ids;
            self.stalls.push(StallReport { cycle: now, starved, stalled_channels, hard });
        } else if starved.is_empty() {
            self.last_starved.clear();
        }
    }

    /// All stall reports recorded so far.
    pub fn stalls(&self) -> &[StallReport] {
        &self.stalls
    }

    /// Final per-flow statistics over a run of `cycles`.
    pub fn stats(&self, cycles: u64) -> Vec<FlowStats> {
        self.senders
            .iter()
            .zip(&self.receivers)
            .zip(&self.counts)
            .enumerate()
            .map(|(i, ((s, r), engine_counts))| {
                let mut counts = s.counts;
                counts.dup_rx = engine_counts.dup_rx;
                counts.corrupt_payloads = engine_counts.corrupt_payloads;
                counts.accepted_corrupt = engine_counts.accepted_corrupt;
                counts.dup_delivered = engine_counts.dup_delivered;
                counts.corrupt_acks = engine_counts.corrupt_acks;
                FlowStats {
                    flow: FlowId(i as u32),
                    spec: s.spec,
                    delivered: r.delivered,
                    acked: s.cum_acked,
                    completed_at: s.completed_at,
                    goodput_ppc: if cycles == 0 {
                        0.0
                    } else {
                        r.delivered as f64 / cycles as f64
                    },
                    final_cwnd: s.cwnd,
                    srtt: s.srtt,
                    counts,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(packets: u64) -> FlowSpec {
        FlowSpec { src: NodeId(0), dst: NodeId(3), packets }
    }

    fn engine(packets: u64) -> FlowEngine {
        FlowEngine::new(&FlowConfig::new(vec![spec(packets)]))
    }

    /// Delivers a payload send to the engine and returns the ack.
    fn deliver(e: &mut FlowEngine, send: FlowSend, xor: u64, now: u64) -> Option<FlowSend> {
        e.on_delivery(send.to, send.tag, xor, now)
    }

    #[test]
    fn clean_flow_completes_with_exactly_once_delivery() {
        let mut e = engine(20);
        let mut now = 0;
        while !e.all_complete() {
            let sends = e.poll(now);
            for s in sends {
                let ack = deliver(&mut e, s, 0, now + 10).expect("payload yields an ack");
                deliver(&mut e, ack, 0, now + 20);
            }
            now += 30;
            assert!(now < 10_000, "clean flow must finish fast");
        }
        let st = &e.stats(now)[0];
        assert_eq!(st.delivered, 20);
        assert_eq!(st.acked, 20);
        assert_eq!(st.counts.retx, 0);
        assert_eq!(st.counts.dup_delivered, 0);
        assert_eq!(st.counts.accepted_corrupt, 0);
        assert!(st.completed_at.is_some());
        assert!(st.final_cwnd > FlowParams::default().init_cwnd, "AIMD must have grown the window");
    }

    #[test]
    fn window_caps_outstanding_packets() {
        let mut e = engine(1000);
        let sends = e.poll(0);
        assert_eq!(sends.len() as u64, FlowParams::default().init_cwnd as u64);
        // No acks, no timer expiry: polling again sends nothing new.
        assert!(e.poll(1).is_empty());
    }

    #[test]
    fn timeout_retransmits_halves_window_and_backs_off() {
        let mut e = engine(100);
        // Grow the window first with a few clean round trips.
        let mut now = 0;
        for _ in 0..6 {
            for s in e.poll(now) {
                let ack = deliver(&mut e, s, 0, now + 5).unwrap();
                deliver(&mut e, ack, 0, now + 10);
            }
            now += 20;
        }
        let cwnd_before = e.senders[0].cwnd;
        let rto = e.senders[0].rto_eff(&e.params);
        // Swallow everything in flight; let the timer fire.
        let in_flight = e.poll(now);
        assert!(!in_flight.is_empty());
        let fire_at = now + rto + 1;
        let resent = e.poll(fire_at);
        assert!(
            resent.iter().any(|s| matches!(s.tag, FlowTag::Payload { seq, .. }
                if seq == e.senders[0].cum_acked)),
            "timeout must retransmit the cumulative edge"
        );
        assert!(e.senders[0].cwnd <= cwnd_before / 2.0 + 1e-9, "multiplicative decrease");
        assert_eq!(e.senders[0].backoff, 1);
        assert_eq!(e.senders[0].counts.timeouts, 1);
        // A second expiry doubles the horizon again.
        let resent2 = e.poll(fire_at + e.senders[0].rto_eff(&e.params) + 1);
        assert!(!resent2.is_empty());
        assert_eq!(e.senders[0].backoff, 2);
    }

    #[test]
    fn duplicate_payloads_are_absorbed_not_delivered_twice() {
        let mut e = engine(5);
        let sends = e.poll(0);
        let first = sends[0];
        let ack1 = deliver(&mut e, first, 0, 10).unwrap();
        let ack2 = deliver(&mut e, first, 0, 11).unwrap(); // duplicate
        assert_eq!(e.counts[0].dup_rx, 1);
        assert_eq!(e.counts[0].dup_delivered, 0);
        assert_eq!(e.receivers[0].delivered, 1);
        // Both acks carry the same cumulative edge.
        let (FlowTag::Ack { cum: c1, .. }, FlowTag::Ack { cum: c2, .. }) = (ack1.tag, ack2.tag)
        else {
            panic!("expected acks")
        };
        assert_eq!(c1, c2);
    }

    #[test]
    fn corrupted_payload_is_dropped_and_healed_by_retransmission() {
        let mut e = engine(3);
        let mut now = 0;
        let mut corrupted_once = false;
        while !e.all_complete() && now < 100_000 {
            for s in e.poll(now) {
                let xor = match s.tag {
                    FlowTag::Payload { seq: 0, .. } if !corrupted_once => {
                        corrupted_once = true;
                        1 << 17
                    }
                    _ => 0,
                };
                if let Some(ack) = deliver(&mut e, s, xor, now + 5) {
                    deliver(&mut e, ack, 0, now + 10);
                }
            }
            now += 20;
        }
        assert!(e.all_complete(), "flow must heal the corrupted packet");
        let st = &e.stats(now)[0];
        assert_eq!(st.counts.corrupt_payloads, 1);
        assert_eq!(st.counts.accepted_corrupt, 0);
        assert!(st.counts.retx >= 1, "the hole must have been retransmitted");
        assert_eq!(st.delivered, 3);
    }

    #[test]
    fn corrupted_ack_is_never_trusted() {
        let mut e = engine(4);
        let sends = e.poll(0);
        let ack = deliver(&mut e, sends[0], 0, 5).unwrap();
        // Corrupt the ack in flight: sender must ignore it.
        deliver(&mut e, ack, 1 << 3, 9);
        assert_eq!(e.counts[0].corrupt_acks, 1);
        assert_eq!(e.senders[0].cum_acked, 0, "corrupted ack must not advance the window");
    }

    #[test]
    fn out_of_order_arrivals_reassemble_in_order() {
        let mut e = engine(4);
        let f = FlowId(0);
        // Deliver 2, 1, 3, 0 — delivery must only count once 0 lands.
        for (seq, expect_delivered) in [(2, 0), (1, 0), (3, 0), (0, 4)] {
            let tag = FlowTag::Payload { flow: f, seq, payload: payload_word(f, seq) };
            e.on_delivery(NodeId(3), tag, 0, 1);
            assert_eq!(e.receivers[0].delivered, expect_delivered, "after seq {seq}");
        }
        assert_eq!(e.counts[0].dup_rx, 0);
    }

    #[test]
    fn watchdog_names_starved_flows_and_declares_livelock() {
        let mut e = FlowEngine::new(&FlowConfig {
            flows: vec![spec(10), FlowSpec { src: NodeId(1), dst: NodeId(2), packets: 10 }],
            params: FlowParams::default(),
            watchdog: WatchdogConfig { interval: 100, hard_stall_checks: 2 },
        });
        e.poll(0);
        // Flow 1 progresses, flow 0 starves: stall named, no livelock.
        let tag = FlowTag::Payload { flow: FlowId(1), seq: 0, payload: payload_word(FlowId(1), 0) };
        let ack = e.on_delivery(NodeId(2), tag, 0, 50).unwrap();
        e.on_delivery(NodeId(1), ack.tag, 0, 60);
        e.watchdog_check(100, Vec::new());
        assert!(!e.livelocked());
        assert_eq!(e.stalls().len(), 1);
        assert_eq!(e.stalls()[0].starved.len(), 1);
        assert_eq!(e.stalls()[0].starved[0].flow, FlowId(0));
        // Now nothing progresses: two more checks declare livelock.
        e.watchdog_check(200, Vec::new());
        assert!(!e.livelocked());
        e.watchdog_check(300, Vec::new());
        assert!(e.livelocked());
        let last = e.stalls().last().unwrap();
        assert!(last.hard);
        assert_eq!(last.starved.len(), 2, "livelock report names every incomplete flow");
    }

    #[test]
    fn jain_index_limits() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
        assert!(jain_index(&[]).is_nan());
        assert!(jain_index(&[0.0, 0.0]).is_nan());
    }

    #[test]
    fn payload_and_ack_words_detect_any_single_flip()
    {
        let f = FlowId(3);
        for bit in 0..64 {
            let xor = 1u64 << bit;
            assert_ne!(payload_word(f, 9) ^ xor, payload_word(f, 9));
            // ack self-check: flipping cum always breaks the pair.
            let (cum, check) = (7u64, ack_check(f, 7));
            assert_ne!(ack_check(f, cum ^ xor), check);
        }
    }
}
