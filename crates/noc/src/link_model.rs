//! Behavioural channel models derived from the three link
//! implementations.
//!
//! The gate-level links in `sal-link` are exact but slow to simulate
//! at network scale; the NoC layer abstracts each switch-to-switch
//! channel to a `(latency, bandwidth, wires)` triple extracted from
//! the gate-level results and the paper's analytic upper bounds.

use sal_analytic::{PerTransferDelay, PerWordDelay};
use sal_des::Time;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};

/// A behavioural inter-router channel.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkModel {
    /// Cycles from a flit leaving the upstream router to it being
    /// enqueued at the downstream router.
    pub latency_cycles: u32,
    /// Sustained channel bandwidth in flits per router cycle (≤ 1).
    pub flits_per_cycle: f64,
    /// Physical wires the channel occupies (the paper's Fig 10 cost).
    pub wires: u32,
}

impl LinkModel {
    /// An idealised single-cycle, full-bandwidth channel.
    pub fn ideal() -> Self {
        LinkModel { latency_cycles: 1, flits_per_cycle: 1.0, wires: 33 }
    }

    /// The synchronous parallel link I1: one flit per clock, one cycle
    /// of latency per pipeline buffer.
    pub fn from_i1(cfg: &LinkConfig) -> Self {
        LinkModel {
            latency_cycles: cfg.buffers.max(1),
            flits_per_cycle: 1.0,
            wires: cfg.wires_sync(),
        }
    }

    /// A serialized asynchronous link (I2 or I3): constant `n + 2`
    /// wires; bandwidth capped by the self-timed upper bound from the
    /// paper's §V delay equations; latency covers the clock-domain
    /// crossings plus the serial transfer time.
    pub fn from_async(family: LinkFamily, cfg: &LinkConfig) -> Self {
        let ub_mflits = match family {
            LinkFamily::PerTransfer => per_transfer_defaults(cfg)
                .upper_bound_mflits(cfg.slices() as u32, cfg.buffers + 1),
            LinkFamily::PerWord => {
                per_word_defaults(cfg).upper_bound_mflits(cfg.buffers)
            }
            LinkFamily::Sync => panic!("use from_i1 for the synchronous link"),
        };
        let clk_mhz = cfg.clk_hz() / 1e6;
        let serial_cycles = (clk_mhz / ub_mflits).ceil().max(1.0) as u32;
        LinkModel {
            // Two interface FIFO crossings (≈2 cycles each at the ends)
            // plus the serialized flight time.
            latency_cycles: 4 + serial_cycles,
            flits_per_cycle: (ub_mflits / clk_mhz).min(1.0),
            wires: cfg.wires_async(),
        }
    }

    /// Dispatch on link family.
    pub fn from_link(family: LinkFamily, cfg: &LinkConfig) -> Self {
        match family {
            LinkFamily::Sync => Self::from_i1(cfg),
            _ => Self::from_async(family, cfg),
        }
    }

    /// Derives the channel model a [`LinkSpec`] describes: the spec
    /// is merged onto the physical `base` configuration exactly as
    /// the gate-level generator would, then abstracted to the
    /// `(latency, bandwidth, wires)` triple.
    pub fn from_spec(spec: &LinkSpec, base: &LinkConfig) -> Self {
        Self::from_link(spec.family(), &spec.apply(base))
    }

    /// Derates the channel for a protected link on a noisy medium:
    /// each word transmission independently fails (is NACKed or timed
    /// out and retransmitted) with probability `p`, so the expected
    /// transmissions per delivered word follow the geometric series
    /// `1/(1-p)`. Sustained bandwidth scales by `1-p`, and the mean
    /// latency grows by the expected retry round trips — each retry
    /// costs roughly one full channel traversal (NACK flight back
    /// plus the replayed serial word).
    ///
    /// As `p → 1` the geometric series diverges; the latency
    /// saturates at `u32::MAX` instead of wrapping through the
    /// float→int cast (a bare `as u32` of a huge or non-finite float
    /// would silently clamp-or-garble the derate).
    ///
    /// # Panics
    ///
    /// `p` must be a probability below 1 — at `p = 1` no word is ever
    /// delivered and the channel has no finite model.
    pub fn with_retransmission(self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "word-error probability {p} outside [0, 1)");
        let expected_tx = 1.0 / (1.0 - p);
        let retry_cycles = (expected_tx - 1.0) * f64::from(self.latency_cycles);
        let retry_cycles = retry_cycles.ceil();
        // Explicit saturating conversion: f64 → u32 only when the
        // value provably fits, u32::MAX otherwise.
        let retry_cycles = if retry_cycles.is_finite() && retry_cycles < f64::from(u32::MAX) {
            retry_cycles as u32
        } else {
            u32::MAX
        };
        LinkModel {
            latency_cycles: self.latency_cycles.saturating_add(retry_cycles),
            flits_per_cycle: self.flits_per_cycle * (1.0 - p),
            wires: self.wires,
        }
    }
}

/// Per-transfer handshake constants matching the gate-level I2 at the
/// default technology point (measured from `sal-link` simulations).
fn per_transfer_defaults(cfg: &LinkConfig) -> PerTransferDelay {
    PerTransferDelay {
        tp: sal_tech::WireModel::default().delay(cfg.segment_um()),
        treqreq: Time::from_ps(90),
        treqack: Time::from_ps(85),
        tackack: Time::from_ps(60),
        tackout: Time::from_ps(95),
        tnextflit: Time::from_ps(430),
    }
}

/// Per-word constants: the paper's §V example values, with the wire
/// propagation term from the configured geometry.
fn per_word_defaults(cfg: &LinkConfig) -> PerWordDelay {
    PerWordDelay {
        tp: sal_tech::WireModel::default().delay(cfg.segment_um()),
        ..PerWordDelay::paper_example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i1_full_rate_any_clock() {
        let cfg = LinkConfig::default();
        let m = LinkModel::from_i1(&cfg);
        assert_eq!(m.flits_per_cycle, 1.0);
        assert_eq!(m.wires, 33);
        assert_eq!(m.latency_cycles, 4);
    }

    #[test]
    fn async_links_saturate_at_upper_bound() {
        // At 100 MHz the serial links keep up (1 flit/cycle); at
        // 400 MHz they saturate below the clock.
        let slow = LinkConfig::default(); // 100 MHz
        let m = LinkModel::from_async(LinkFamily::PerWord, &slow);
        assert!((m.flits_per_cycle - 1.0).abs() < 1e-9);
        assert_eq!(m.wires, 10);
        let fast = LinkConfig {
            clk_period: sal_des::Time::from_ps(2500), // 400 MHz
            ..LinkConfig::default()
        };
        let mf = LinkModel::from_async(LinkFamily::PerWord, &fast);
        assert!(mf.flits_per_cycle < 1.0, "rate {}", mf.flits_per_cycle);
        assert!(mf.flits_per_cycle > 0.5);
    }

    #[test]
    fn retransmission_derating_follows_the_geometric_series() {
        let base = LinkModel::from_link(LinkFamily::PerTransfer, &LinkConfig::default());
        // A perfect medium is the identity.
        assert_eq!(base.with_retransmission(0.0), base);
        // 20% word-error rate: bandwidth scales by exactly 1-p, and
        // the mean latency grows by the expected retry traversals
        // ((1/(1-p) - 1) ≈ 0.25 of a round trip, ceiled).
        let noisy = base.with_retransmission(0.2);
        assert!((noisy.flits_per_cycle - base.flits_per_cycle * 0.8).abs() < 1e-12);
        assert!(noisy.latency_cycles > base.latency_cycles);
        assert_eq!(noisy.wires, base.wires, "derating never changes the wire count");
        // Monotonic: a noisier medium is never faster.
        let worse = base.with_retransmission(0.5);
        assert!(worse.flits_per_cycle < noisy.flits_per_cycle);
        assert!(worse.latency_cycles >= noisy.latency_cycles);
    }

    #[test]
    fn retransmission_near_p_one_saturates_instead_of_wrapping() {
        let base = LinkModel::from_link(LinkFamily::PerTransfer, &LinkConfig::default());
        // p = 0.999: expected transmissions = 1000, retry cycles in
        // the tens of thousands — fine. Push the latency so the
        // product overflows u32: the old bare `as u32` cast wrapped
        // here; the fix must saturate monotonically.
        let huge = LinkModel { latency_cycles: u32::MAX / 2, ..base };
        let derated = huge.with_retransmission(0.999);
        assert_eq!(derated.latency_cycles, u32::MAX, "must saturate, not wrap");
        assert!(derated.flits_per_cycle > 0.0);
        // And the normal-scale p = 0.999 case stays monotonic and finite.
        let noisy = base.with_retransmission(0.999);
        assert!(noisy.latency_cycles > base.latency_cycles);
        assert!(noisy.latency_cycles < u32::MAX);
        assert!(
            noisy.latency_cycles >= base.latency_cycles.saturating_mul(500),
            "p=0.999 must cost ~1000 traversals (got {})",
            noisy.latency_cycles
        );
        assert!((noisy.flits_per_cycle - base.flits_per_cycle * 0.001).abs() < 1e-12);
    }

    #[test]
    fn from_spec_matches_from_link_on_the_merged_config() {
        let spec = LinkSpec::builder()
            .family(LinkFamily::PerWord)
            .word_width(16)
            .serial_ratio(8)
            .buffer_depth(6)
            .build()
            .unwrap();
        let base = LinkConfig::default();
        let via_spec = LinkModel::from_spec(&spec, &base);
        let via_cfg = LinkModel::from_link(LinkFamily::PerWord, &spec.apply(&base));
        assert_eq!(via_spec, via_cfg);
        assert_eq!(via_spec.wires, 4); // 2 data + req + ack
    }

    #[test]
    fn wire_cost_contrast() {
        let cfg = LinkConfig::default();
        let sync = LinkModel::from_i1(&cfg);
        let ser = LinkModel::from_link(LinkFamily::PerTransfer, &cfg);
        assert!(ser.wires * 3 < sync.wires);
    }
}
