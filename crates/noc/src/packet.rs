//! Packets and flits.

use crate::NodeId;

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PacketId(pub u64);

/// A network packet, segmented into flits for wormhole switching.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Packet {
    /// Identifier.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits (including head and tail).
    pub len_flits: u32,
    /// Cycle the packet was created at the source core.
    pub inject_cycle: u64,
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlitKind {
    /// First flit: carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the wormhole path.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

/// One flow-control unit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketId,
    /// Kind within the packet.
    pub kind: FlitKind,
    /// Source node (odd-even routing may turn freely only in the
    /// source column, so the route function needs it; replicated like
    /// `dst` so routers need no packet table).
    pub src: NodeId,
    /// Destination (replicated so routers need no packet table).
    pub dst: NodeId,
    /// Sequence number within the packet (0 = head).
    pub seq: u32,
}

impl Packet {
    /// Segments the packet into its flit sequence.
    ///
    /// # Panics
    ///
    /// Panics if the packet has zero length.
    pub fn flits(&self) -> Vec<Flit> {
        assert!(self.len_flits >= 1, "packet must have at least one flit");
        (0..self.len_flits)
            .map(|i| {
                let kind = match (i, self.len_flits) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, n) if i + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                Flit { packet: self.id, kind, src: self.src, dst: self.dst, seq: i }
            })
            .collect()
    }
}

impl Flit {
    /// True if this flit ends its packet.
    pub fn is_tail(&self) -> bool {
        matches!(self.kind, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// True if this flit starts its packet.
    pub fn is_head(&self) -> bool {
        matches!(self.kind, FlitKind::Head | FlitKind::HeadTail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u32) -> Packet {
        Packet {
            id: PacketId(7),
            src: NodeId(0),
            dst: NodeId(5),
            len_flits: len,
            inject_cycle: 0,
        }
    }

    #[test]
    fn segmentation_kinds() {
        let f = pkt(4).flits();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].kind, FlitKind::Head);
        assert_eq!(f[1].kind, FlitKind::Body);
        assert_eq!(f[2].kind, FlitKind::Body);
        assert_eq!(f[3].kind, FlitKind::Tail);
        assert!(f[0].is_head() && !f[0].is_tail());
        assert!(f[3].is_tail() && !f[3].is_head());
        assert_eq!(f.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let f = pkt(1).flits();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FlitKind::HeadTail);
        assert!(f[0].is_head() && f[0].is_tail());
    }
}
