//! The 5-port input-buffered wormhole switch.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use crate::{Direction, Flit, PacketId};

/// One router of the mesh: five input FIFOs (N/S/E/W/Local), a route
/// decision per head flit (delegated to the network's route table —
/// the router itself holds no routing policy), round-robin output
/// arbitration, and wormhole locking (an output granted to a packet
/// stays granted until its tail passes).
#[derive(Debug)]
pub struct Router {
    node: crate::NodeId,
    inputs: [VecDeque<Flit>; 5],
    capacity: usize,
    /// Which input and packet currently own each output (wormhole
    /// lock). Tracking the packet id (not just the input) lets the
    /// lock survive interleaved arrivals and lets reconfiguration
    /// salvage or sever it precisely.
    output_owner: [Option<(usize, PacketId)>; 5],
    /// Round-robin arbitration pointer per output.
    rr: [usize; 5],
}

impl Router {
    /// Creates a router with the given per-input FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(node: crate::NodeId, capacity: usize) -> Self {
        assert!(capacity >= 1, "input queue needs capacity");
        Router {
            node,
            inputs: Default::default(),
            capacity,
            output_owner: [None; 5],
            rr: [0; 5],
        }
    }

    /// The node this router serves.
    pub fn node(&self) -> crate::NodeId {
        self.node
    }

    /// Free slots in the input FIFO of `port`.
    pub fn free_slots(&self, port: Direction) -> usize {
        self.capacity - self.inputs[port.index()].len()
    }

    /// Total buffered flits across all inputs.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum()
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the input FIFO is full (callers must check
    /// [`Router::free_slots`] — the channel models backpressure).
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        let q = &mut self.inputs[port.index()];
        assert!(q.len() < self.capacity, "input overrun at {} {:?}", self.node, port);
        q.push_back(flit);
    }

    /// Arbitration + switch traversal for one cycle: returns up to one
    /// flit per output port as `(output, flit)`.
    ///
    /// `route(in_port, head)` is the single routing decision point: it
    /// names the output the head flit (which arrived on `in_port`)
    /// must take, or `None` if the destination is currently
    /// unroutable (the head waits; the flow watchdog names persistent
    /// cases). `can_send(output)` tells the router whether the
    /// downstream channel can accept a flit this cycle (`Local`
    /// ejection is always possible).
    pub fn step<R, F>(&mut self, mut route: R, mut can_send: F) -> Vec<(Direction, Flit)>
    where
        R: FnMut(Direction, &Flit) -> Option<Direction>,
        F: FnMut(Direction) -> bool,
    {
        let mut moves = Vec::new();
        for out in Direction::ALL {
            let oi = out.index();
            // Grant the output if free: round-robin over inputs whose
            // head flit routes to this output.
            if self.output_owner[oi].is_none() {
                for k in 0..5 {
                    let ii = (self.rr[oi] + k) % 5;
                    if ii == oi && out != Direction::Local {
                        continue; // no U-turns
                    }
                    if let Some(head) = self.inputs[ii].front() {
                        // An adaptive route may prefer a different
                        // output each cycle as queue depths shift; a
                        // packet that already owns an output must not
                        // be granted a second one, or the worm splits
                        // across outputs and the abandoned lock is
                        // orphaned forever.
                        let already_owns = self
                            .output_owner
                            .iter()
                            .any(|o| o.is_some_and(|(_, p)| p == head.packet));
                        if head.is_head()
                            && !already_owns
                            && route(Direction::ALL[ii], head) == Some(out)
                        {
                            self.output_owner[oi] = Some((ii, head.packet));
                            self.rr[oi] = (ii + 1) % 5;
                            break;
                        }
                    }
                }
            }
            // Traverse: forward one flit from the owning input.
            if let Some((ii, pid)) = self.output_owner[oi] {
                if !can_send(out) {
                    continue;
                }
                // The owning input's front flit may not have arrived yet.
                let Some(front) = self.inputs[ii].front() else { continue };
                // Only forward flits of the owning packet — the head
                // established the claim; body/tail follow in FIFO
                // order, so a different packet at the front means the
                // owner's next flit is still in flight upstream.
                if front.packet != pid {
                    continue;
                }
                let flit = *front;
                self.inputs[ii].pop_front();
                if flit.is_tail() {
                    self.output_owner[oi] = None;
                }
                moves.push((out, flit));
            }
        }
        moves
    }

    /// Reconfiguration surgery: removes every queued flit of the
    /// `doomed` packets and releases any wormhole lock they own.
    /// Returns the number of flits removed.
    pub(crate) fn purge(&mut self, doomed: &BTreeSet<PacketId>) -> u64 {
        let mut removed = 0u64;
        for q in &mut self.inputs {
            let before = q.len();
            q.retain(|f| !doomed.contains(&f.packet));
            removed += (before - q.len()) as u64;
        }
        for owner in &mut self.output_owner {
            if owner.is_some_and(|(_, pid)| doomed.contains(&pid)) {
                *owner = None;
            }
        }
        removed
    }

    /// Reconfiguration surgery: releases the wormhole lock on `out`
    /// (whose downstream channel just died) and reports the owning
    /// packet. The second element is `true` if the packet is
    /// *salvageable* — its head flit is still queued here, so after a
    /// route-table rebuild it simply re-routes; `false` means the
    /// head already crossed the dead wire and the packet is severed.
    pub(crate) fn disown_output(&mut self, out: Direction) -> Option<(PacketId, bool)> {
        let (ii, pid) = self.output_owner[out.index()].take()?;
        let head_still_here = self.inputs[ii]
            .front()
            .is_some_and(|f| f.packet == pid && f.is_head());
        Some((pid, head_still_here))
    }

    /// Every queued head flit with the input port it arrived on (the
    /// reconfiguration sweep checks each against the rebuilt table).
    pub(crate) fn queued_heads(&self) -> impl Iterator<Item = (Direction, &Flit)> {
        Direction::ALL.into_iter().flat_map(move |d| {
            self.inputs[d.index()].iter().filter(|f| f.is_head()).map(move |f| (d, f))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlitKind, Mesh, NodeId, Packet};

    fn flits_of(id: u64, dst: NodeId, len: u32) -> Vec<Flit> {
        Packet { id: PacketId(id), src: NodeId(0), dst, len_flits: len, inject_cycle: 0 }.flits()
    }

    /// The pre-reroute behaviour: static XY from the mesh.
    fn xy(mesh: Mesh, node: NodeId) -> impl FnMut(Direction, &Flit) -> Option<Direction> {
        move |_in, f| Some(mesh.route_xy(node, f.dst))
    }

    #[test]
    fn routes_local_injection_east() {
        let mesh = Mesh::new(3, 1);
        let node = mesh.node(0, 0);
        let mut r = Router::new(node, 4);
        for f in flits_of(1, mesh.node(2, 0), 3) {
            r.accept(Direction::Local, f);
        }
        let mut all = Vec::new();
        for _ in 0..3 {
            all.extend(r.step(xy(mesh, node), |_| true));
        }
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|(d, _)| *d == Direction::East));
        assert_eq!(all.last().unwrap().1.kind, FlitKind::Tail);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn wormhole_lock_excludes_interleaving() {
        // Two packets from different inputs both want East; flits must
        // not interleave.
        let mesh = Mesh::new(3, 3);
        let mid = mesh.node(1, 1);
        let mut r = Router::new(mid, 8);
        let dst = mesh.node(2, 1);
        for f in flits_of(1, dst, 3) {
            r.accept(Direction::West, f);
        }
        for f in flits_of(2, dst, 3) {
            r.accept(Direction::Local, f);
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            for (d, f) in r.step(xy(mesh, mid), |_| true) {
                assert_eq!(d, Direction::East);
                order.push(f.packet.0);
            }
        }
        assert_eq!(order.len(), 6);
        // All of one packet, then all of the other.
        assert!(order == [1, 1, 1, 2, 2, 2] || order == [2, 2, 2, 1, 1, 1], "{order:?}");
    }

    #[test]
    fn backpressure_holds_flits() {
        let mesh = Mesh::new(2, 1);
        let node = mesh.node(0, 0);
        let mut r = Router::new(node, 4);
        for f in flits_of(1, mesh.node(1, 0), 2) {
            r.accept(Direction::Local, f);
        }
        let moves = r.step(xy(mesh, node), |_| false); // channel refuses
        assert!(moves.is_empty());
        assert_eq!(r.occupancy(), 2);
        let moves = r.step(xy(mesh, node), |_| true);
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn ejects_at_destination() {
        let mesh = Mesh::new(2, 2);
        let n = mesh.node(1, 1);
        let mut r = Router::new(n, 4);
        for f in flits_of(9, n, 1) {
            r.accept(Direction::North, f);
        }
        let moves = r.step(xy(mesh, n), |_| true);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].0, Direction::Local);
    }

    #[test]
    fn unroutable_head_waits() {
        let mesh = Mesh::new(3, 1);
        let node = mesh.node(0, 0);
        let mut r = Router::new(node, 4);
        for f in flits_of(1, mesh.node(2, 0), 2) {
            r.accept(Direction::Local, f);
        }
        let moves = r.step(|_, _| None, |_| true);
        assert!(moves.is_empty(), "unroutable head must wait, not misroute");
        assert_eq!(r.occupancy(), 2);
        // Routability restored (reconfiguration): traffic resumes.
        let moves = r.step(xy(mesh, node), |_| true);
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn a_flapping_route_cannot_split_a_worm_across_outputs() {
        let mesh = Mesh::new(3, 3);
        let mid = mesh.node(1, 1);
        let dst = mesh.node(2, 2);
        let mut r = Router::new(mid, 8);
        for f in flits_of(7, dst, 3) {
            r.accept(Direction::Local, f);
        }
        // Cycle 1: the adaptive route prefers East; East is granted
        // but its channel refuses.
        assert!(r.step(|_, _| Some(Direction::East), |d| d != Direction::East).is_empty());
        // Cycle 2: queue-depth bias now prefers South. The packet
        // already owns East, so South must not be granted too —
        // otherwise the worm splits across outputs and East's lock is
        // orphaned forever once the tail leaves through South.
        assert!(r.step(|_, _| Some(Direction::South), |d| d != Direction::East).is_empty());
        // East reopens: the whole worm leaves through it, whatever
        // the route closure says now.
        let mut outs = Vec::new();
        for _ in 0..4 {
            for (d, f) in r.step(|_, _| Some(Direction::South), |_| true) {
                outs.push((d, f.packet.0));
            }
        }
        assert_eq!(outs, vec![(Direction::East, 7); 3]);
        // The tail released the lock: a new packet can claim East.
        for f in flits_of(8, dst, 1) {
            r.accept(Direction::West, f);
        }
        assert_eq!(r.step(|_, _| Some(Direction::East), |_| true).len(), 1);
    }

    #[test]
    fn purge_removes_flits_and_releases_locks() {
        let mesh = Mesh::new(3, 1);
        let node = mesh.node(0, 0);
        let mut r = Router::new(node, 8);
        let dst = mesh.node(2, 0);
        for f in flits_of(1, dst, 3) {
            r.accept(Direction::West, f);
        }
        for f in flits_of(2, dst, 3) {
            r.accept(Direction::Local, f);
        }
        // Grant the East output to packet 1 (West input wins the round
        // robin) and move its head out.
        let moves = r.step(xy(mesh, node), |_| true);
        assert_eq!(moves.len(), 1);
        let removed = r.purge(&BTreeSet::from([PacketId(1)]));
        assert_eq!(removed, 2, "two queued flits of packet 1 removed");
        // The lock was released: packet 2 wins East immediately.
        let moves = r.step(xy(mesh, node), |_| true);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].1.packet, PacketId(2));
    }

    #[test]
    fn disown_reports_salvage_only_before_the_head_crossed() {
        let mesh = Mesh::new(3, 1);
        let node = mesh.node(0, 0);
        let dst = mesh.node(2, 0);
        // Case 1: lock granted, head forwarded — severed.
        let mut r = Router::new(node, 8);
        for f in flits_of(1, dst, 3) {
            r.accept(Direction::Local, f);
        }
        assert_eq!(r.step(xy(mesh, node), |_| true).len(), 1);
        assert_eq!(r.disown_output(Direction::East), Some((PacketId(1), false)));
        // Case 2: lock granted but channel refused — head still here,
        // salvageable.
        let mut r = Router::new(node, 8);
        for f in flits_of(2, dst, 3) {
            r.accept(Direction::Local, f);
        }
        assert!(r.step(xy(mesh, node), |_| false).is_empty());
        assert_eq!(r.disown_output(Direction::East), Some((PacketId(2), true)));
        // Unlocked outputs report nothing.
        assert_eq!(r.disown_output(Direction::West), None);
    }
}
