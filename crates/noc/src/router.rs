//! The 5-port input-buffered wormhole switch.

use std::collections::VecDeque;

use crate::{Direction, Flit, Mesh, NodeId};

/// One router of the mesh: five input FIFOs (N/S/E/W/Local), XY route
/// computation at each head flit, round-robin output arbitration, and
/// wormhole locking (an output granted to a packet stays granted until
/// its tail passes).
#[derive(Debug)]
pub struct Router {
    node: NodeId,
    inputs: [VecDeque<Flit>; 5],
    capacity: usize,
    /// Which input currently owns each output (wormhole lock).
    output_owner: [Option<usize>; 5],
    /// Round-robin arbitration pointer per output.
    rr: [usize; 5],
}

impl Router {
    /// Creates a router with the given per-input FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        assert!(capacity >= 1, "input queue needs capacity");
        Router {
            node,
            inputs: Default::default(),
            capacity,
            output_owner: [None; 5],
            rr: [0; 5],
        }
    }

    /// The node this router serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Free slots in the input FIFO of `port`.
    pub fn free_slots(&self, port: Direction) -> usize {
        self.capacity - self.inputs[port.index()].len()
    }

    /// Total buffered flits across all inputs.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum()
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the input FIFO is full (callers must check
    /// [`Router::free_slots`] — the channel models backpressure).
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        let q = &mut self.inputs[port.index()];
        assert!(q.len() < self.capacity, "input overrun at {} {:?}", self.node, port);
        q.push_back(flit);
    }

    /// Arbitration + switch traversal for one cycle: returns up to one
    /// flit per output port as `(output, flit)`. `can_send(output)`
    /// tells the router whether the downstream channel can accept a
    /// flit this cycle (`Local` ejection is always possible).
    pub fn step<F>(&mut self, mesh: &Mesh, mut can_send: F) -> Vec<(Direction, Flit)>
    where
        F: FnMut(Direction) -> bool,
    {
        let mut moves = Vec::new();
        for out in Direction::ALL {
            let oi = out.index();
            // Grant the output if free: round-robin over inputs whose
            // head flit routes to this output.
            if self.output_owner[oi].is_none() {
                for k in 0..5 {
                    let ii = (self.rr[oi] + k) % 5;
                    if ii == oi && out != Direction::Local {
                        continue; // no U-turns
                    }
                    if let Some(head) = self.inputs[ii].front() {
                        if head.is_head() && mesh.route_xy(self.node, head.dst) == out {
                            self.output_owner[oi] = Some(ii);
                            self.rr[oi] = (ii + 1) % 5;
                            break;
                        }
                    }
                }
            }
            // Traverse: forward one flit from the owning input.
            if let Some(ii) = self.output_owner[oi] {
                if !can_send(out) {
                    continue;
                }
                // The owning input's front flit may not have arrived yet.
                let Some(front) = self.inputs[ii].front() else { continue };
                // Only forward flits of the owning packet: the head
                // established the claim; body/tail follow in FIFO order.
                let flit = *front;
                if flit.is_head() && mesh.route_xy(self.node, flit.dst) != out {
                    // A different packet's head reached the front; the
                    // lock is stale only after a tail, so this cannot
                    // happen — defensive skip.
                    continue;
                }
                self.inputs[ii].pop_front();
                if flit.is_tail() {
                    self.output_owner[oi] = None;
                }
                moves.push((out, flit));
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlitKind, Packet, PacketId};

    fn flits_of(id: u64, dst: NodeId, len: u32) -> Vec<Flit> {
        Packet { id: PacketId(id), src: NodeId(0), dst, len_flits: len, inject_cycle: 0 }.flits()
    }

    #[test]
    fn routes_local_injection_east() {
        let mesh = Mesh::new(3, 1);
        let mut r = Router::new(mesh.node(0, 0), 4);
        for f in flits_of(1, mesh.node(2, 0), 3) {
            r.accept(Direction::Local, f);
        }
        let mut all = Vec::new();
        for _ in 0..3 {
            all.extend(r.step(&mesh, |_| true));
        }
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|(d, _)| *d == Direction::East));
        assert_eq!(all.last().unwrap().1.kind, FlitKind::Tail);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn wormhole_lock_excludes_interleaving() {
        // Two packets from different inputs both want East; flits must
        // not interleave.
        let mesh = Mesh::new(3, 3);
        let mid = mesh.node(1, 1);
        let mut r = Router::new(mid, 8);
        let dst = mesh.node(2, 1);
        for f in flits_of(1, dst, 3) {
            r.accept(Direction::West, f);
        }
        for f in flits_of(2, dst, 3) {
            r.accept(Direction::Local, f);
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            for (d, f) in r.step(&mesh, |_| true) {
                assert_eq!(d, Direction::East);
                order.push(f.packet.0);
            }
        }
        assert_eq!(order.len(), 6);
        // All of one packet, then all of the other.
        assert!(order == [1, 1, 1, 2, 2, 2] || order == [2, 2, 2, 1, 1, 1], "{order:?}");
    }

    #[test]
    fn backpressure_holds_flits() {
        let mesh = Mesh::new(2, 1);
        let mut r = Router::new(mesh.node(0, 0), 4);
        for f in flits_of(1, mesh.node(1, 0), 2) {
            r.accept(Direction::Local, f);
        }
        let moves = r.step(&mesh, |_| false); // channel refuses
        assert!(moves.is_empty());
        assert_eq!(r.occupancy(), 2);
        let moves = r.step(&mesh, |_| true);
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn ejects_at_destination() {
        let mesh = Mesh::new(2, 2);
        let n = mesh.node(1, 1);
        let mut r = Router::new(n, 4);
        for f in flits_of(9, n, 1) {
            r.accept(Direction::North, f);
        }
        let moves = r.step(&mesh, |_| true);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].0, Direction::Local);
    }
}
