//! Network measurement results.

use crate::fault::{RecoveryCounts, RecoveryTotals};
use crate::topology::{Direction, NodeId};

/// Recovery counters of one channel, addressed by its upstream node
/// and direction. Rows are emitted for *every* channel (all zeros on
/// a quiet or loss-free channel) and sorted by `(node, direction)`,
/// so two stats from identically-shaped networks always compare
/// field-for-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct LinkRecovery {
    /// Upstream node of the channel.
    pub node: NodeId,
    /// Direction the channel points.
    pub dir: Direction,
    /// What happened on it.
    pub counts: RecoveryCounts,
}

/// Aggregate statistics over the measurement phase of a network run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetworkStats {
    /// Measured cycles.
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Packets created at the cores during measurement.
    pub offered_packets: u64,
    /// Packets whose tail was ejected during measurement.
    pub delivered_packets: u64,
    /// Flits ejected during measurement.
    pub delivered_flits: u64,
    /// Sum of packet latencies (inject → tail eject), cycles.
    pub latency_sum: u64,
    /// Worst packet latency observed, cycles.
    pub latency_max: u64,
    /// Per-packet latencies (for percentiles). Sorted ascending once
    /// at the end of [`crate::Network::run`]; quantiles index into it
    /// directly.
    pub latencies: Vec<u64>,
    /// Packets still in flight at the end (non-zero near saturation).
    pub in_flight: u64,
    /// Packets ejected carrying an undetected payload corruption
    /// (nonzero accumulated bit-flip mask from the lossy channels).
    pub corrupt_packets: u64,
    /// Flits entering the fabric during measurement (the left side of
    /// the conservation law: in flow mode, which measures from cycle
    /// 0, `injected_flits = delivered_flits + stranded_flits +
    /// residual_flits` holds exactly and is asserted per run).
    pub injected_flits: u64,
    /// Flits lost to channel deaths: caught mid-flight on a wire that
    /// entered `Failed`, or purged with a severed packet during
    /// reconfiguration. Before this counter they stranded silently.
    pub stranded_flits: u64,
    /// Packets that lost at least one flit to a channel death. Their
    /// recovery (if any) is the transport layer's retransmission.
    pub stranded_packets: u64,
    /// Packets whose wormhole lock pointed into a dying channel but
    /// whose head had not crossed yet: reconfiguration released the
    /// lock and they re-routed intact.
    pub salvaged_packets: u64,
    /// Flits still queued in the fabric (router FIFOs, live channel
    /// queues, source queues) when the run ended.
    pub residual_flits: u64,
    /// Reconfiguration epochs performed (adaptive routing: route
    /// table rebuilds triggered by channel deaths).
    pub reconfig_epochs: u64,
    /// Failed channels revived by the last-resort deep retrain: a
    /// reconfiguration found the failure pattern had severed part of
    /// the fabric (some source could no longer reach some
    /// destination), and rather than abandon the node the fabric
    /// manager put the link back through a long resync.
    pub retrained_links: u64,
    /// Per-channel recovery counters, sorted by `(node, direction)`.
    pub link_recovery: Vec<LinkRecovery>,
    /// Network-wide recovery totals.
    pub recovery: RecoveryTotals,
}

impl NetworkStats {
    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            return f64::NAN;
        }
        self.latency_sum as f64 / self.delivered_packets as f64
    }

    /// Sorts the latency vector in place (called once at the end of a
    /// run, so [`NetworkStats::latency_quantile`] can index directly).
    pub(crate) fn finalize_latencies(&mut self) {
        self.latencies.sort_unstable();
    }

    /// Recomputes `link_recovery`-derived totals (called at the end of
    /// a run after the per-channel rows are collected).
    pub(crate) fn finalize_recovery(&mut self) {
        let mut totals = RecoveryTotals::default();
        for row in &self.link_recovery {
            totals.counts.absorb(&row.counts);
            totals.failed_links += u64::from(row.counts.failed);
        }
        self.recovery = totals;
    }

    /// The `p`-quantile latency (e.g. 0.95), cycles.
    ///
    /// The latency vector is sorted once when the run finishes, so
    /// this is a pure index in the common case; a vector the caller
    /// built or mutated out of order falls back to a one-off sorted
    /// copy rather than returning a wrong quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        if self.latencies.is_empty() {
            return 0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        if self.latencies.is_sorted() {
            self.latencies[idx]
        } else {
            let mut v = self.latencies.clone();
            v.sort_unstable();
            v[idx]
        }
    }

    /// Accepted throughput in flits per node per cycle.
    pub fn throughput_fpnc(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered_flits as f64 / self.cycles as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(latencies: Vec<u64>) -> NetworkStats {
        NetworkStats {
            cycles: 1000,
            nodes: 16,
            offered_packets: 100,
            delivered_packets: 100,
            delivered_flits: 400,
            latency_sum: 2000,
            latency_max: 90,
            latencies,
            ..NetworkStats::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample((1..=100).collect());
        assert!((s.avg_latency() - 20.0).abs() < 1e-9);
        assert!((s.throughput_fpnc() - 0.025).abs() < 1e-9);
        assert_eq!(s.latency_quantile(1.0), 100);
        assert_eq!(s.latency_quantile(0.0), 1);
        let med = s.latency_quantile(0.5);
        assert!((50..=51).contains(&med));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = NetworkStats::default();
        assert!(s.avg_latency().is_nan());
        assert_eq!(s.throughput_fpnc(), 0.0);
        assert_eq!(s.latency_quantile(0.5), 0);
    }

    #[test]
    fn repeated_quantile_calls_agree_sorted_or_not() {
        // Deliberately unsorted: the fallback path must agree with the
        // sorted fast path, and repeated calls must agree with each
        // other (the old implementation re-cloned + re-sorted every
        // call; the vector itself must also stay untouched).
        let unsorted: Vec<u64> = (1..=100).rev().collect();
        let mut s = sample(unsorted.clone());
        for p in [0.0, 0.25, 0.5, 0.9, 0.95, 1.0] {
            let a = s.latency_quantile(p);
            let b = s.latency_quantile(p);
            assert_eq!(a, b, "repeated calls at p={p}");
        }
        assert_eq!(s.latencies, unsorted, "quantile must not mutate the vector");
        let slow: Vec<u64> = [0.0, 0.5, 1.0].iter().map(|&p| s.latency_quantile(p)).collect();
        s.finalize_latencies();
        assert!(s.latencies.is_sorted());
        let fast: Vec<u64> = [0.0, 0.5, 1.0].iter().map(|&p| s.latency_quantile(p)).collect();
        assert_eq!(slow, fast, "fallback and indexed paths must agree");
    }

    #[test]
    fn recovery_totals_roll_up() {
        let mut s = NetworkStats {
            link_recovery: vec![
                LinkRecovery {
                    node: NodeId(0),
                    dir: Direction::East,
                    counts: RecoveryCounts { errors: 5, nacks: 4, replays: 4, ..Default::default() },
                },
                LinkRecovery {
                    node: NodeId(1),
                    dir: Direction::West,
                    counts: RecoveryCounts { errors: 2, failed: true, ..Default::default() },
                },
                LinkRecovery {
                    node: NodeId(2),
                    dir: Direction::North,
                    counts: RecoveryCounts::default(),
                },
            ],
            ..Default::default()
        };
        s.finalize_recovery();
        assert_eq!(s.recovery.counts.errors, 7);
        assert_eq!(s.recovery.counts.nacks, 4);
        assert_eq!(s.recovery.failed_links, 1);
        assert!(s.recovery.counts.failed);
    }
}
