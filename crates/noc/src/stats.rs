//! Network measurement results.

/// Aggregate statistics over the measurement phase of a network run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct NetworkStats {
    /// Measured cycles.
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Packets created at the cores during measurement.
    pub offered_packets: u64,
    /// Packets whose tail was ejected during measurement.
    pub delivered_packets: u64,
    /// Flits ejected during measurement.
    pub delivered_flits: u64,
    /// Sum of packet latencies (inject → tail eject), cycles.
    pub latency_sum: u64,
    /// Worst packet latency observed, cycles.
    pub latency_max: u64,
    /// Per-packet latencies (for percentiles).
    pub latencies: Vec<u64>,
    /// Packets still in flight at the end (non-zero near saturation).
    pub in_flight: u64,
}

impl NetworkStats {
    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            return f64::NAN;
        }
        self.latency_sum as f64 / self.delivered_packets as f64
    }

    /// The `p`-quantile latency (e.g. 0.95), cycles.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        if self.latencies.is_empty() {
            return 0;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    }

    /// Accepted throughput in flits per node per cycle.
    pub fn throughput_fpnc(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered_flits as f64 / self.cycles as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = NetworkStats {
            cycles: 1000,
            nodes: 16,
            offered_packets: 100,
            delivered_packets: 100,
            delivered_flits: 400,
            latency_sum: 2000,
            latency_max: 90,
            latencies: (1..=100).collect(),
            in_flight: 0,
        };
        assert!((s.avg_latency() - 20.0).abs() < 1e-9);
        assert!((s.throughput_fpnc() - 0.025).abs() < 1e-9);
        assert_eq!(s.latency_quantile(1.0), 100);
        assert_eq!(s.latency_quantile(0.0), 1);
        let med = s.latency_quantile(0.5);
        assert!((50..=51).contains(&med));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = NetworkStats::default();
        assert!(s.avg_latency().is_nan());
        assert_eq!(s.throughput_fpnc(), 0.0);
        assert_eq!(s.latency_quantile(0.5), 0);
    }
}
