//! The cycle-driven network simulator.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    Direction, Flit, LinkModel, Mesh, NetworkStats, NodeId, Packet, PacketId, Router,
    TrafficPattern,
};

/// Static configuration of a network instance.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology.
    pub mesh: Mesh,
    /// Channel model used for every inter-router link.
    pub link: LinkModel,
    /// Router input FIFO depth, flits.
    pub input_queue_flits: usize,
    /// Packet length, flits.
    pub packet_len_flits: u32,
}

/// One unidirectional inter-router channel instance.
#[derive(Debug)]
struct Channel {
    model: LinkModel,
    /// Flits in flight: `(deliver_at_cycle, flit)`.
    in_flight: VecDeque<(u64, Flit)>,
    /// Bandwidth accumulator (≥ 1 permits a send).
    rate_credit: f64,
    /// Downstream buffer credits.
    buffer_credits: usize,
}

impl Channel {
    fn new(model: LinkModel, downstream_capacity: usize) -> Self {
        Channel {
            model,
            in_flight: VecDeque::new(),
            rate_credit: 1.0,
            buffer_credits: downstream_capacity,
        }
    }

    fn can_accept(&self) -> bool {
        self.rate_credit >= 1.0 && self.buffer_credits > self.in_flight.len()
    }

    fn send(&mut self, now: u64, flit: Flit) {
        debug_assert!(self.can_accept());
        self.rate_credit -= 1.0;
        self.in_flight.push_back((now + self.model.latency_cycles as u64, flit));
    }

    fn tick(&mut self) {
        self.rate_credit = (self.rate_credit + self.model.flits_per_cycle).min(2.0);
    }
}

/// An open-loop network simulation: cores inject packets according to
/// a [`TrafficPattern`] at a configured flit rate; wormhole routers
/// forward them over [`LinkModel`] channels; statistics are gathered
/// after a warm-up phase.
pub struct Network {
    cfg: NetworkConfig,
    pattern: TrafficPattern,
    /// Offered load, flits per node per cycle.
    inject_rate: f64,
    rng: StdRng,
    routers: Vec<Router>,
    /// Outgoing channel per (node, direction index 0..4).
    channels: HashMap<(u16, usize), Channel>,
    inject_q: Vec<VecDeque<Flit>>,
    packets: HashMap<PacketId, Packet>,
    next_packet: u64,
    cycle: u64,
}

impl Network {
    /// Builds a network.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero-length packets, zero
    /// queues, negative rate).
    pub fn new(cfg: NetworkConfig, pattern: TrafficPattern, inject_rate: f64, seed: u64) -> Self {
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.input_queue_flits >= 1, "routers need input buffering");
        assert!(inject_rate >= 0.0, "negative injection rate");
        let mesh = cfg.mesh;
        let routers: Vec<Router> =
            mesh.node_ids().map(|n| Router::new(n, cfg.input_queue_flits)).collect();
        let mut channels = HashMap::new();
        for n in mesh.node_ids() {
            for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
                if mesh.neighbor(n, dir).is_some() {
                    channels.insert(
                        (n.0, dir.index()),
                        Channel::new(cfg.link, cfg.input_queue_flits),
                    );
                }
            }
        }
        let nodes = mesh.nodes();
        Network {
            cfg,
            pattern,
            inject_rate,
            rng: StdRng::seed_from_u64(seed),
            routers,
            channels,
            inject_q: vec![VecDeque::new(); nodes],
            packets: HashMap::new(),
            next_packet: 0,
            cycle: 0,
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs for `total_cycles`, measuring after `warmup_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_cycles >= total_cycles`.
    pub fn run(&mut self, total_cycles: u64, warmup_cycles: u64) -> NetworkStats {
        assert!(warmup_cycles < total_cycles, "warmup must leave measurement cycles");
        let mut stats = NetworkStats {
            nodes: self.cfg.mesh.nodes(),
            ..NetworkStats::default()
        };
        let mut created_total: u64 = 0;
        let mut delivered_total: u64 = 0;
        for _ in 0..total_cycles {
            let measuring = self.cycle >= warmup_cycles;
            let created = self.step_cycle(&mut stats, measuring);
            created_total += created;
            delivered_total = stats.delivered_packets;
        }
        stats.cycles = total_cycles - warmup_cycles;
        stats.in_flight = created_total.saturating_sub(delivered_total);
        stats
    }

    /// Advances one cycle; returns packets created this cycle.
    fn step_cycle(&mut self, stats: &mut NetworkStats, measuring: bool) -> u64 {
        let mesh = self.cfg.mesh;
        let now = self.cycle;

        // 1. Channel delivery (in-order, blocked by downstream space).
        for ((node, diri), ch) in &mut self.channels {
            let from = NodeId(*node);
            let dir = Direction::ALL[*diri];
            let to = mesh.neighbor(from, dir).expect("channel to nowhere");
            let in_port = dir.opposite();
            while let Some(&(at, flit)) = ch.in_flight.front() {
                if at > now || self.routers[to.0 as usize].free_slots(in_port) == 0 {
                    break;
                }
                ch.in_flight.pop_front();
                self.routers[to.0 as usize].accept(in_port, flit);
            }
            ch.tick();
        }

        // 2. Injection: create packets, feed Local inputs.
        let mut created = 0;
        let p_packet = self.inject_rate / self.cfg.packet_len_flits as f64;
        for n in mesh.node_ids() {
            if mesh.nodes() > 1 && self.rng.gen_bool(p_packet.min(1.0)) {
                let dst = self.pattern.destination(&mesh, n, &mut self.rng);
                let pkt = Packet {
                    id: PacketId(self.next_packet),
                    src: n,
                    dst,
                    len_flits: self.cfg.packet_len_flits,
                    inject_cycle: now,
                };
                self.next_packet += 1;
                for f in pkt.flits() {
                    self.inject_q[n.0 as usize].push_back(f);
                }
                self.packets.insert(pkt.id, pkt);
                created += 1;
                if measuring {
                    stats.offered_packets += 1;
                }
            }
            // Move source-queue flits into the router's Local input.
            let r = &mut self.routers[n.0 as usize];
            while r.free_slots(Direction::Local) > 0 {
                match self.inject_q[n.0 as usize].pop_front() {
                    Some(f) => r.accept(Direction::Local, f),
                    None => break,
                }
            }
        }

        // 3. Switch allocation and traversal.
        for n in mesh.node_ids() {
            let idx = n.0 as usize;
            // Split borrows: collect sendability first.
            let mut can = [true; 5];
            for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
                can[dir.index()] = self
                    .channels
                    .get(&(n.0, dir.index()))
                    .is_some_and(|c| c.can_accept());
            }
            let moves = self.routers[idx].step(&mesh, |d| can[d.index()]);
            for (out, flit) in moves {
                if out == Direction::Local {
                    // Ejected at the destination core.
                    if flit.is_tail() {
                        let pkt = self
                            .packets
                            .remove(&flit.packet)
                            .expect("tail of unknown packet");
                        debug_assert_eq!(pkt.dst, n, "packet ejected at wrong node");
                        if measuring {
                            let lat = now + 1 - pkt.inject_cycle;
                            stats.delivered_packets += 1;
                            stats.latency_sum += lat;
                            stats.latency_max = stats.latency_max.max(lat);
                            stats.latencies.push(lat);
                        } else {
                            self.note_unmeasured_delivery();
                        }
                    }
                    if measuring {
                        stats.delivered_flits += 1;
                    }
                } else {
                    let ch = self
                        .channels
                        .get_mut(&(n.0, out.index()))
                        .expect("send over missing channel");
                    ch.send(now, flit);
                }
            }
        }

        // 4. Return buffer credits for flits the routers consumed: the
        //    credit view is refreshed from actual occupancy (simpler
        //    and equivalent to credit return signalling at this
        //    abstraction level).
        for ((node, diri), ch) in &mut self.channels {
            let from = NodeId(*node);
            let dir = Direction::ALL[*diri];
            let to = mesh.neighbor(from, dir).expect("channel to nowhere");
            ch.buffer_credits =
                self.routers[to.0 as usize].free_slots(dir.opposite());
        }

        self.cycle += 1;
        created
    }

    fn note_unmeasured_delivery(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(link: LinkModel) -> NetworkConfig {
        NetworkConfig {
            mesh: Mesh::new(4, 4),
            link,
            input_queue_flits: 8,
            packet_len_flits: 4,
        }
    }

    #[test]
    fn light_load_delivers_everything_quickly() {
        let mut net = Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, 0.05, 7);
        let stats = net.run(4_000, 1_000);
        assert!(stats.delivered_packets > 100, "only {} delivered", stats.delivered_packets);
        // At 5% load a 4x4 mesh is far from saturation: latency near
        // the zero-load bound (a few hops × (1+link latency) + serialization).
        assert!(stats.avg_latency() < 30.0, "latency {}", stats.avg_latency());
        // Delivered ≈ offered (no growing backlog).
        let ratio = stats.delivered_packets as f64 / stats.offered_packets as f64;
        assert!(ratio > 0.9, "backlog building at light load: {ratio}");
    }

    #[test]
    fn latency_grows_with_load() {
        let lat_at = |rate: f64| {
            let mut net =
                Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, rate, 11);
            net.run(6_000, 2_000).avg_latency()
        };
        let low = lat_at(0.05);
        let high = lat_at(0.55);
        assert!(
            high > low * 1.5,
            "latency did not grow with load: {low} -> {high}"
        );
    }

    #[test]
    fn slow_serial_channel_saturates_earlier() {
        // Serial link at 40% of router bandwidth: accepted throughput
        // must cap well below the parallel link's.
        let serial = LinkModel { latency_cycles: 5, flits_per_cycle: 0.4, wires: 10 };
        let rate = 0.6; // beyond the serial capacity
        let mut par =
            Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, rate, 13);
        let sp = par.run(6_000, 2_000).throughput_fpnc();
        let mut ser = Network::new(base_cfg(serial), TrafficPattern::UniformRandom, rate, 13);
        let ss = ser.run(6_000, 2_000).throughput_fpnc();
        assert!(
            ss < sp * 0.85,
            "serial {ss:.3} should saturate below parallel {sp:.3}"
        );
        assert!(ss > 0.1, "serial network moved almost nothing: {ss:.3}");
    }

    #[test]
    fn transpose_and_hotspot_patterns_deliver() {
        for pat in [
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Hotspot { node: NodeId(0), permille: 300 },
        ] {
            let mut net = Network::new(base_cfg(LinkModel::ideal()), pat, 0.05, 23);
            let stats = net.run(4_000, 1_000);
            assert!(stats.delivered_packets > 50, "{pat:?} delivered {}", stats.delivered_packets);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut net = Network::new(
                base_cfg(LinkModel::ideal()),
                TrafficPattern::UniformRandom,
                0.2,
                99,
            );
            let s = net.run(3_000, 1_000);
            (s.delivered_packets, s.latency_sum, s.delivered_flits)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_idles() {
        let mut net =
            Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, 0.0, 1);
        let stats = net.run(1_000, 100);
        assert_eq!(stats.delivered_packets, 0);
        assert_eq!(stats.offered_packets, 0);
    }
}
