//! The cycle-driven network simulator.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{ChannelFaults, ChannelState, FaultDice, RecoveryCounts, Upset};
use crate::flow::{FlowConfig, FlowEngine, FlowStats, FlowTag, StallReport, StalledChannel, jain_index};
use crate::routing::{LinkHealth, LinkKill, RouteTable, RoutingMode};
use crate::stats::LinkRecovery;
use crate::{
    Direction, Flit, LinkModel, Mesh, NetworkStats, NodeId, Packet, PacketId, Router,
    TrafficPattern,
};

/// Static configuration of a network instance.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology.
    pub mesh: Mesh,
    /// Channel model used for every inter-router link.
    pub link: LinkModel,
    /// Router input FIFO depth, flits.
    pub input_queue_flits: usize,
    /// Packet length, flits.
    pub packet_len_flits: u32,
    /// Dynamic per-channel fault process (`None`: perfect channels).
    /// When set, every channel runs its own seeded error process and
    /// the NACK/timeout/resync/degrade/fail escalation ladder; the
    /// protection mode's bandwidth tax is applied to the link model.
    pub faults: Option<ChannelFaults>,
    /// Routing policy: static XY or fault-tolerant adaptive with
    /// online reconfiguration (see [`RoutingMode`]).
    pub routing: RoutingMode,
    /// Scheduled permanent channel deaths (directed failure
    /// scenarios; composes with `faults`-driven escalation).
    pub link_kills: Vec<LinkKill>,
}

/// Dynamic lossy-channel state: the seeded dice plus the escalation
/// ladder position (mirrors the gate-level `sal-link` controller).
#[derive(Debug)]
struct Lossy {
    dice: FaultDice,
    /// Consecutive failed delivery attempts of the current head flit.
    consec: u32,
    /// Resyncs burned on the current head flit (escalation driver).
    head_resyncs: u32,
    counts: RecoveryCounts,
}

/// One unidirectional inter-router channel instance.
#[derive(Debug)]
struct Channel {
    model: LinkModel,
    /// Flits in flight: `(deliver_at_cycle, flit)`.
    in_flight: VecDeque<(u64, Flit)>,
    /// Bandwidth accumulator (≥ 1 permits a send).
    rate_credit: f64,
    /// Downstream buffer credits.
    buffer_credits: usize,
    /// Last cycle anything was delivered (watchdog diagnosis).
    last_delivery: u64,
    /// Health state: escalation-driven on lossy channels, or set
    /// directly by scheduled [`LinkKill`]s — which is why it lives on
    /// the channel, not inside the fault machinery.
    state: ChannelState,
    /// Sticky record that the channel entered `Failed` at least once —
    /// a last-resort retrain can revive the *state*, but the failure
    /// must stay visible in the recovery rows.
    ever_failed: bool,
    /// Fault machinery, when the network is lossy.
    lossy: Option<Lossy>,
}

impl Channel {
    fn new(model: LinkModel, downstream_capacity: usize, lossy: Option<Lossy>) -> Self {
        Channel {
            model,
            in_flight: VecDeque::new(),
            rate_credit: 1.0,
            buffer_credits: downstream_capacity,
            last_delivery: 0,
            state: ChannelState::Up,
            ever_failed: false,
            lossy,
        }
    }

    /// Availability: a failed channel never accepts, a resyncing one
    /// is draining and refuses new work.
    fn is_open(&self) -> bool {
        !matches!(self.state, ChannelState::Failed | ChannelState::Resyncing { .. })
    }

    fn can_accept(&self) -> bool {
        self.is_open() && self.rate_credit >= 1.0 && self.buffer_credits > self.in_flight.len()
    }

    /// The health class the route table's bias sees.
    fn health(&self) -> LinkHealth {
        match self.state {
            ChannelState::Up => LinkHealth::Up,
            ChannelState::Degraded { .. } => LinkHealth::Degraded,
            ChannelState::Resyncing { .. } => LinkHealth::Resyncing,
            ChannelState::Failed => LinkHealth::Failed,
        }
    }

    fn send(&mut self, now: u64, flit: Flit) {
        debug_assert!(self.can_accept());
        self.rate_credit -= 1.0;
        self.in_flight.push_back((now + self.model.latency_cycles as u64, flit));
    }

    fn tick(&mut self, now: u64) {
        let mut rate = self.model.flits_per_cycle;
        match self.state {
            ChannelState::Failed => rate = 0.0,
            ChannelState::Degraded { until } if now < until => {
                // Transient degrade: half bandwidth.
                rate /= 2.0;
                if let Some(l) = &mut self.lossy {
                    l.counts.degraded_cycles += 1;
                }
            }
            _ => {}
        }
        self.rate_credit = (self.rate_credit + rate).min(2.0);
    }
}

/// Outcome of a flow-mode run: the transport-level story on top of
/// the usual [`NetworkStats`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FlowNetReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Every flow fully acknowledged.
    pub completed: bool,
    /// The progress watchdog declared livelock and aborted the run.
    pub livelocked: bool,
    /// Jain fairness index over per-flow goodput.
    pub jain: f64,
    /// Per-flow statistics.
    pub flows: Vec<FlowStats>,
    /// Watchdog stall reports (who starved, which channels wedged).
    pub stalls: Vec<StallReport>,
    /// The underlying network statistics (incl. recovery counters).
    pub net: NetworkStats,
}

/// A cycle-level network simulation over a wormhole-routed mesh of
/// [`LinkModel`] channels, in one of two modes:
///
/// * **Open loop** ([`Network::new`] + [`Network::run`]): cores
///   inject packets per a [`TrafficPattern`] at a configured rate.
/// * **Flows** ([`Network::with_flows`] + [`Network::run_flows`]):
///   a [`FlowEngine`] drives windowed end-to-end senders whose acks
///   ride the mesh as ordinary return packets.
///
/// With [`NetworkConfig::faults`] set, every channel runs a seeded
/// dynamic fault process with the NACK/timeout/resync/degrade/fail
/// escalation ladder; per-channel [`RecoveryCounts`] surface in
/// [`NetworkStats::link_recovery`].
pub struct Network {
    cfg: NetworkConfig,
    pattern: TrafficPattern,
    /// Offered load, flits per node per cycle.
    inject_rate: f64,
    rng: StdRng,
    routers: Vec<Router>,
    /// Outgoing channel per (node, direction index 0..4).
    ///
    /// Iterated in hash order, which is fine *only because* all
    /// per-channel state (including each lossy channel's own RNG) is
    /// disjoint — nothing drawn while iterating is shared.
    channels: HashMap<(u16, usize), Channel>,
    inject_q: Vec<VecDeque<Flit>>,
    packets: HashMap<PacketId, Packet>,
    /// Accumulated undetected-corruption bit-flip mask per packet.
    corrupt_xor: HashMap<PacketId, u64>,
    /// Flow-level content of in-flight packets (flow mode).
    flow_tags: HashMap<PacketId, FlowTag>,
    /// The transport engine (flow mode only).
    flows: Option<FlowEngine>,
    /// The live routing function (used in adaptive mode; rebuilt on
    /// every reconfiguration epoch).
    routes: RouteTable,
    /// Scheduled channel deaths, sorted by cycle; `kill_idx` is the
    /// next one due.
    kills: Vec<LinkKill>,
    kill_idx: usize,
    /// Injection is paused until this cycle (reconfiguration epoch).
    inject_frozen_until: u64,
    /// Packets already counted stranded (static XY leaves a severed
    /// packet's upstream fragments wedged in place, and a later
    /// failure must not count the same packet twice).
    stranded_ids: HashSet<PacketId>,
    next_packet: u64,
    cycle: u64,
}

impl Network {
    /// Builds an open-loop network.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero-length packets, zero
    /// queues, negative rate).
    pub fn new(cfg: NetworkConfig, pattern: TrafficPattern, inject_rate: f64, seed: u64) -> Self {
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.input_queue_flits >= 1, "routers need input buffering");
        assert!(inject_rate >= 0.0, "negative injection rate");
        let mesh = cfg.mesh;
        let routers: Vec<Router> =
            mesh.node_ids().map(|n| Router::new(n, cfg.input_queue_flits)).collect();
        // The protection mode taxes the link: CRC check bytes ride the
        // serial wire, parity rides an extra physical wire.
        let model = match cfg.faults {
            Some(fc) => LinkModel {
                flits_per_cycle: cfg.link.flits_per_cycle * fc.protection.bandwidth_factor(),
                wires: cfg.link.wires + fc.protection.extra_wires(),
                ..cfg.link
            },
            None => cfg.link,
        };
        let mut channels = HashMap::new();
        for (n, dir) in mesh.directed_channels() {
            let lossy = cfg.faults.map(|fc| Lossy {
                dice: FaultDice::new(fc, seed, n.0, dir.index()),
                consec: 0,
                head_resyncs: 0,
                counts: RecoveryCounts::default(),
            });
            channels.insert(
                (n.0, dir.index()),
                Channel::new(model, cfg.input_queue_flits, lossy),
            );
        }
        let mut kills = cfg.link_kills.clone();
        kills.sort_by_key(|k| (k.cycle, k.node.0, k.dir.index()));
        for k in &kills {
            assert!(
                channels.contains_key(&(k.node.0, k.dir.index())),
                "scheduled kill of a channel that does not exist: {} {:?}",
                k.node,
                k.dir
            );
        }
        let nodes = mesh.nodes();
        Network {
            cfg,
            pattern,
            inject_rate,
            rng: StdRng::seed_from_u64(seed),
            routers,
            channels,
            inject_q: vec![VecDeque::new(); nodes],
            packets: HashMap::new(),
            corrupt_xor: HashMap::new(),
            flow_tags: HashMap::new(),
            flows: None,
            routes: RouteTable::new(mesh),
            kills,
            kill_idx: 0,
            inject_frozen_until: 0,
            stranded_ids: HashSet::new(),
            next_packet: 0,
            cycle: 0,
        }
    }

    /// Builds a flow-mode network: no open-loop injection; the given
    /// flows drive all traffic.
    ///
    /// # Panics
    ///
    /// Panics if a flow endpoint is outside the mesh.
    pub fn with_flows(cfg: NetworkConfig, flows: &FlowConfig, seed: u64) -> Self {
        let nodes = cfg.mesh.nodes() as u16;
        for f in &flows.flows {
            assert!(f.src.0 < nodes && f.dst.0 < nodes, "flow endpoint outside the mesh");
        }
        let mut net = Network::new(cfg, TrafficPattern::UniformRandom, 0.0, seed);
        net.flows = Some(FlowEngine::new(flows));
        net
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs open loop for `total_cycles`, measuring after
    /// `warmup_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_cycles >= total_cycles`.
    pub fn run(&mut self, total_cycles: u64, warmup_cycles: u64) -> NetworkStats {
        assert!(warmup_cycles < total_cycles, "warmup must leave measurement cycles");
        let mut stats = NetworkStats {
            nodes: self.cfg.mesh.nodes(),
            ..NetworkStats::default()
        };
        let mut created_total: u64 = 0;
        let mut delivered_total: u64 = 0;
        for _ in 0..total_cycles {
            let measuring = self.cycle >= warmup_cycles;
            let created = self.step_cycle(&mut stats, measuring);
            created_total += created;
            delivered_total = stats.delivered_packets;
        }
        stats.cycles = total_cycles - warmup_cycles;
        stats.in_flight =
            created_total.saturating_sub(delivered_total + stats.stranded_packets);
        self.finalize(&mut stats);
        stats
    }

    /// Runs flow mode until every flow completes, the watchdog
    /// declares livelock, or `max_cycles` elapse.
    ///
    /// # Panics
    ///
    /// Panics if the network was not built with
    /// [`Network::with_flows`].
    pub fn run_flows(&mut self, max_cycles: u64) -> FlowNetReport {
        assert!(self.flows.is_some(), "run_flows needs a flow-mode network");
        let mut stats = NetworkStats {
            nodes: self.cfg.mesh.nodes(),
            ..NetworkStats::default()
        };
        let interval = self.flows.as_ref().expect("flow mode").watchdog_interval();
        let mut created_total: u64 = 0;
        let mut cycles: u64 = 0;
        while cycles < max_cycles {
            created_total += self.step_cycle(&mut stats, true);
            cycles += 1;
            if self.flows.as_ref().expect("flow mode").all_complete() {
                break;
            }
            if self.cycle.is_multiple_of(interval) {
                let stalled = self.stalled_channels(interval);
                let engine = self.flows.as_mut().expect("flow mode");
                engine.watchdog_check(self.cycle, stalled);
                if engine.livelocked() {
                    break;
                }
            }
        }
        stats.cycles = cycles;
        stats.in_flight =
            created_total.saturating_sub(stats.delivered_packets + stats.stranded_packets);
        self.finalize(&mut stats);
        // Flow mode measures from cycle 0, so the flit conservation
        // law is exact: every injected flit was delivered, stranded
        // by a channel death, or is still queued somewhere.
        assert_eq!(
            stats.injected_flits,
            stats.delivered_flits + stats.stranded_flits + stats.residual_flits,
            "flit conservation violated"
        );
        let engine = self.flows.as_ref().expect("flow mode");
        let flows = engine.stats(cycles);
        let goodputs: Vec<f64> = flows.iter().map(|f| f.goodput_ppc).collect();
        FlowNetReport {
            cycles,
            completed: engine.all_complete(),
            livelocked: engine.livelocked(),
            jain: jain_index(&goodputs),
            flows,
            stalls: engine.stalls().to_vec(),
            net: stats,
        }
    }

    /// End-of-run bookkeeping: sort latencies once (quantiles index
    /// directly afterwards) and collect the per-channel recovery rows
    /// in deterministic `(node, direction)` order — rows exist for
    /// every channel, all-zero when nothing happened, so loss-free
    /// and `p = 0` runs compare equal field-for-field.
    fn finalize(&self, stats: &mut NetworkStats) {
        stats.finalize_latencies();
        // Flits still queued anywhere in the fabric (conservation).
        stats.residual_flits = self
            .routers
            .iter()
            .map(|r| r.occupancy() as u64)
            .sum::<u64>()
            + self.channels.values().map(|c| c.in_flight.len() as u64).sum::<u64>()
            + self.inject_q.iter().map(|q| q.len() as u64).sum::<u64>();
        let mut rows: Vec<LinkRecovery> = self
            .channels
            .iter()
            .map(|((node, diri), ch)| {
                let mut counts = ch.lossy.as_ref().map(|l| l.counts).unwrap_or_default();
                // Scheduled kills fail channels without fault
                // machinery, and a retrained channel no longer *is*
                // Failed — the sticky bit surfaces both in the
                // recovery rows.
                counts.failed = counts.failed || ch.ever_failed;
                LinkRecovery { node: NodeId(*node), dir: Direction::ALL[*diri], counts }
            })
            .collect();
        rows.sort_by_key(|r| (r.node, r.dir.index()));
        stats.link_recovery = rows;
        stats.finalize_recovery();
    }

    /// Channels that look wedged: permanently failed, or holding
    /// flits without delivering for a whole watchdog interval.
    fn stalled_channels(&self, interval: u64) -> Vec<StalledChannel> {
        let now = self.cycle;
        let mut rows: Vec<StalledChannel> = self
            .channels
            .iter()
            .filter_map(|((node, diri), ch)| {
                let state = ch.state.label();
                let queued = ch.in_flight.len();
                let wedged = state == "failed"
                    || (queued > 0 && now.saturating_sub(ch.last_delivery) >= interval);
                wedged.then(|| StalledChannel {
                    from: NodeId(*node),
                    dir: Direction::ALL[*diri],
                    state,
                    queued,
                    last_delivery: ch.last_delivery,
                })
            })
            .collect();
        rows.sort_by_key(|r| (r.from, r.dir.index()));
        rows
    }

    /// Creates a packet at `from` bound for `to` and feeds its flits
    /// into the source queue.
    fn spawn_packet(&mut self, from: NodeId, to: NodeId, len_flits: u32, tag: Option<FlowTag>) {
        let pkt = Packet {
            id: PacketId(self.next_packet),
            src: from,
            dst: to,
            len_flits,
            inject_cycle: self.cycle,
        };
        self.next_packet += 1;
        for f in pkt.flits() {
            self.inject_q[from.0 as usize].push_back(f);
        }
        if let Some(tag) = tag {
            self.flow_tags.insert(pkt.id, tag);
        }
        self.packets.insert(pkt.id, pkt);
    }

    /// One reconfiguration epoch around the channels that entered
    /// `Failed` this cycle.
    ///
    /// In both routing modes the dead wires are drained: flits caught
    /// mid-flight are gone, and their packets counted stranded (they
    /// used to sit in the dead queue silently — the stranding the
    /// `stranded_flits` counter makes visible).
    ///
    /// In adaptive mode the network additionally performs surgery so
    /// the survivors keep flowing deadlock-free: *every* wormhole lock
    /// is released — a packet whose head had not yet crossed its
    /// locked output is *salvaged* (it simply re-arbitrates on the
    /// rebuilt table), one whose head already crossed is severed and
    /// purged everywhere, because a worm straddling routers drags
    /// pre-epoch channel dependencies that can deadlock against the
    /// rebuilt relation (the transport layer retransmits it over the
    /// new routes). The route table is rebuilt against the full failed
    /// set, heads the new relation cannot route from where they stand
    /// are severed too, and injection pauses for the configured
    /// reconfiguration window. See DESIGN.md §5h.
    /// When even reconfiguration cannot keep every pair routable, the
    /// minimal set of failed channels is *revived* through a deep
    /// retrain instead (counted in `retrained_links`) — a retrained
    /// link stays dark for this many cycles before re-entering
    /// service.
    const RETRAIN_DRAIN: u64 = 256;

    fn handle_failures(&mut self, mut newly: Vec<(u16, usize)>, stats: &mut NetworkStats) {
        newly.sort_unstable();
        newly.dedup();
        // Drain the dead wires.
        let mut doomed: BTreeSet<PacketId> = BTreeSet::new();
        for &(node, diri) in &newly {
            let ch = self.channels.get_mut(&(node, diri)).expect("failed channel exists");
            for (_, f) in ch.in_flight.drain(..) {
                stats.stranded_flits += 1;
                doomed.insert(f.packet);
            }
        }
        if !self.cfg.routing.is_adaptive() {
            // Static XY: no reconfiguration. Upstream fragments stay
            // wedged (the pre-reroute livelock behaviour, preserved
            // and pinned by test); only the accounting is new.
            for pid in doomed {
                if self.stranded_ids.insert(pid) {
                    stats.stranded_packets += 1;
                }
            }
            return;
        }
        // Every wormhole lock held at the epoch boundary was granted
        // under the pre-failure routing relation, and a worm whose
        // head already crossed the locked output keeps dragging
        // old-relation channel dependencies through the fabric — mixed
        // with the rebuilt relation those can close a deadlock cycle,
        // so such worms are severed. A worm whose head is still queued
        // at the owning input is salvaged: the lock is released and
        // the head re-arbitrates on the rebuilt table, so its entire
        // remaining path obeys the new relation.
        let mut salvage: BTreeSet<PacketId> = BTreeSet::new();
        for r in &mut self.routers {
            for out in Direction::ALL {
                if let Some((pid, head_still_queued)) = r.disown_output(out) {
                    if head_still_queued {
                        salvage.insert(pid);
                    } else {
                        doomed.insert(pid);
                    }
                }
            }
        }
        // Rebuild the table against the full failed set, then doom
        // every head the new relation cannot route from where it
        // stands: a packet's inbound channel may now be classified
        // "down" while its remaining journey needs an "up" move, and
        // such a head would otherwise wait forever.
        let mut failed: BTreeSet<(u16, u8)> = self
            .channels
            .iter()
            .filter(|(_, ch)| matches!(ch.state, ChannelState::Failed))
            .map(|(&(n, d), _)| (n, d as u8))
            .collect();
        // Last-resort retrain: up*/down* routes every pair only while
        // the surviving directed graph keeps a legal path between all
        // of them. When the failure pattern severs part of the fabric
        // (e.g. both inbound channels of a node die), no route table
        // can save the severed traffic — so rather than abandon a
        // node, the fabric manager revives failed channels one at a
        // time (each greedily chosen to close the most unroutable
        // pairs) and puts them back through a deep resync. A retrained
        // link re-enters service with its escalation ladder reset; XY
        // mode never reaches this code, so its livelock is preserved.
        let mut revived: Vec<(u16, u8)> = Vec::new();
        loop {
            self.routes.rebuild(failed.clone());
            if self.routes.unroutable_pairs() == 0 || failed.is_empty() {
                break;
            }
            let mut probe = self.routes.clone();
            let mut best: Option<((u16, u8), u32)> = None;
            for &c in &failed {
                let mut f = failed.clone();
                f.remove(&c);
                probe.rebuild(f);
                let gaps = probe.unroutable_pairs();
                if best.is_none_or(|(_, g)| gaps < g) {
                    best = Some((c, gaps));
                }
            }
            let (c, _) = best.expect("failed set is non-empty");
            failed.remove(&c);
            revived.push(c);
        }
        for &(node, diri) in &revived {
            let ch = self
                .channels
                .get_mut(&(node, usize::from(diri)))
                .expect("revived channel exists");
            ch.state = ChannelState::Resyncing { until: self.cycle + Self::RETRAIN_DRAIN };
            if let Some(l) = &mut ch.lossy {
                l.consec = 0;
                l.head_resyncs = 0;
            }
            stats.retrained_links += 1;
        }
        let mesh = self.cfg.mesh;
        for (idx, r) in self.routers.iter().enumerate() {
            let at = NodeId(idx as u16);
            for (in_port, f) in r.queued_heads() {
                if self.routes.permitted(f.src, at, in_port, f.dst).is_empty() {
                    doomed.insert(f.packet);
                }
            }
        }
        for (&(node, diri), ch) in &self.channels {
            let dir = Direction::ALL[diri];
            let to = mesh.neighbor(NodeId(node), dir).expect("channel to nowhere");
            for (_, f) in &ch.in_flight {
                if f.is_head()
                    && self.routes.permitted(f.src, to, dir.opposite(), f.dst).is_empty()
                {
                    doomed.insert(f.packet);
                }
            }
        }
        for (idx, q) in self.inject_q.iter().enumerate() {
            let at = NodeId(idx as u16);
            for f in q {
                if f.is_head()
                    && self.routes.permitted(f.src, at, Direction::Local, f.dst).is_empty()
                {
                    doomed.insert(f.packet);
                }
            }
        }
        for pid in &doomed {
            salvage.remove(pid);
        }
        stats.salvaged_packets += salvage.len() as u64;
        // Purge every trace of the severed packets: router FIFOs and
        // locks, surviving channel queues, source queues, bookkeeping.
        for r in &mut self.routers {
            stats.stranded_flits += r.purge(&doomed);
        }
        for ch in self.channels.values_mut() {
            let before = ch.in_flight.len();
            ch.in_flight.retain(|(_, f)| !doomed.contains(&f.packet));
            stats.stranded_flits += (before - ch.in_flight.len()) as u64;
        }
        for q in &mut self.inject_q {
            let before = q.len();
            q.retain(|f| !doomed.contains(&f.packet));
            stats.stranded_flits += (before - q.len()) as u64;
        }
        stats.stranded_packets += doomed.len() as u64;
        for pid in &doomed {
            self.packets.remove(pid);
            self.corrupt_xor.remove(pid);
            self.flow_tags.remove(pid);
        }
        // Open the reconfiguration window (the table itself was
        // rebuilt above, before the routability sweep).
        stats.reconfig_epochs += 1;
        if let RoutingMode::Adaptive { reconfig_pause } = self.cfg.routing {
            self.inject_frozen_until = self.cycle + u64::from(reconfig_pause);
        }
    }

    /// Advances one cycle; returns packets created this cycle.
    #[allow(clippy::too_many_lines)]
    fn step_cycle(&mut self, stats: &mut NetworkStats, measuring: bool) -> u64 {
        let mesh = self.cfg.mesh;
        let now = self.cycle;

        // 0. Scheduled channel deaths due this cycle.
        let mut newly_failed: Vec<(u16, usize)> = Vec::new();
        while self.kill_idx < self.kills.len() && self.kills[self.kill_idx].cycle <= now {
            let k = self.kills[self.kill_idx];
            self.kill_idx += 1;
            let ch = self
                .channels
                .get_mut(&(k.node.0, k.dir.index()))
                .expect("kills validated at construction");
            if !matches!(ch.state, ChannelState::Failed) {
                ch.state = ChannelState::Failed;
                ch.ever_failed = true;
                newly_failed.push((k.node.0, k.dir.index()));
            }
        }

        // 1. Channel delivery (in-order, blocked by downstream space),
        //    with the fault process rolled per delivery attempt.
        for ((node, diri), ch) in &mut self.channels {
            let from = NodeId(*node);
            let dir = Direction::ALL[*diri];
            let to = mesh.neighbor(from, dir).expect("channel to nowhere");
            let in_port = dir.opposite();
            // Expire transient states.
            let mut open = true;
            match ch.state {
                ChannelState::Failed => open = false,
                ChannelState::Resyncing { until } => {
                    if now >= until {
                        ch.state = ChannelState::Up;
                    } else {
                        open = false;
                    }
                }
                ChannelState::Degraded { until } => {
                    if now >= until {
                        ch.state = ChannelState::Up;
                    }
                }
                ChannelState::Up => {}
            }
            while open {
                let Some(&(at, flit)) = ch.in_flight.front() else { break };
                if at > now || self.routers[to.0 as usize].free_slots(in_port) == 0 {
                    break;
                }
                let upset = match &mut ch.lossy {
                    Some(l) => l.dice.roll(),
                    None => Upset::Clean,
                };
                match upset {
                    Upset::Clean | Upset::Corrupted(_) => {
                        if let Upset::Corrupted(mask) = upset {
                            // Protection missed the upset: the flit is
                            // delivered with payload bits flipped; only
                            // an end-to-end check can catch it now.
                            let l = ch.lossy.as_mut().expect("corruption needs fault state");
                            l.counts.errors += 1;
                            l.counts.undetected += 1;
                            *self.corrupt_xor.entry(flit.packet).or_insert(0) ^= mask;
                        }
                        ch.in_flight.pop_front();
                        self.routers[to.0 as usize].accept(in_port, flit);
                        ch.last_delivery = now;
                        if let Some(l) = &mut ch.lossy {
                            l.consec = 0;
                            l.head_resyncs = 0;
                        }
                    }
                    Upset::Nacked | Upset::TimedOut => {
                        // Detected upset: head-of-line replay after the
                        // discovery delay (NACK flight or timeout
                        // horizon with exponential backoff) plus the
                        // forward flight of the replayed flit.
                        let l = ch.lossy.as_mut().expect("detected upset needs fault state");
                        let cfg = *l.dice.cfg();
                        l.counts.errors += 1;
                        let delay = if upset == Upset::Nacked {
                            l.counts.nacks += 1;
                            u64::from(cfg.nack_latency)
                        } else {
                            l.counts.timeouts += 1;
                            l.dice.timeout_horizon(l.consec)
                        };
                        l.counts.replays += 1;
                        l.consec += 1;
                        ch.in_flight[0].0 = now + delay + u64::from(ch.model.latency_cycles);
                        if l.consec >= cfg.resync_after {
                            // Watchdog resync: drain the link and climb
                            // the escalation ladder.
                            l.consec = 0;
                            l.head_resyncs += 1;
                            l.counts.resyncs += 1;
                            let drain_end = now + u64::from(cfg.resync_penalty);
                            if cfg.fail_after_resyncs.is_some_and(|n| l.head_resyncs >= n) {
                                ch.state = ChannelState::Failed;
                                ch.ever_failed = true;
                                l.counts.failed = true;
                                newly_failed.push((*node, *diri));
                            } else if l.head_resyncs >= cfg.degrade_after {
                                l.counts.degrades += 1;
                                ch.state = ChannelState::Degraded {
                                    until: drain_end + u64::from(cfg.degrade_cycles),
                                };
                            } else {
                                ch.state = ChannelState::Resyncing { until: drain_end };
                            }
                        }
                        open = false;
                    }
                }
            }
            ch.tick(now);
        }

        // 1b. Reconfiguration epoch: strand/salvage around every
        //     channel that died this cycle, then (adaptive mode)
        //     rebuild the route table and pause injection.
        if !newly_failed.is_empty() {
            self.handle_failures(newly_failed, stats);
        }

        // 2. Injection: flow senders or the open-loop pattern.
        let mut created = 0;
        if self.flows.is_some() {
            let sends = self.flows.as_mut().expect("flow mode").poll(now);
            for s in sends {
                let len = match s.tag {
                    FlowTag::Payload { .. } => self.cfg.packet_len_flits,
                    FlowTag::Ack { .. } => 1,
                };
                self.spawn_packet(s.from, s.to, len, Some(s.tag));
                created += 1;
                if measuring {
                    stats.offered_packets += 1;
                    stats.injected_flits += u64::from(len);
                }
            }
        } else {
            let p_packet = self.inject_rate / self.cfg.packet_len_flits as f64;
            for n in mesh.node_ids() {
                if mesh.nodes() > 1 && self.rng.gen_bool(p_packet.min(1.0)) {
                    let dst = self.pattern.destination(&mesh, n, &mut self.rng);
                    self.spawn_packet(n, dst, self.cfg.packet_len_flits, None);
                    created += 1;
                    if measuring {
                        stats.offered_packets += 1;
                        stats.injected_flits += u64::from(self.cfg.packet_len_flits);
                    }
                }
            }
        }
        // Move source-queue flits into the routers' Local inputs —
        // unless a reconfiguration epoch has injection paused (senders
        // keep queueing; the fabric interface holds them back).
        if now >= self.inject_frozen_until {
            for n in mesh.node_ids() {
                let r = &mut self.routers[n.0 as usize];
                while r.free_slots(Direction::Local) > 0 {
                    match self.inject_q[n.0 as usize].pop_front() {
                        Some(f) => r.accept(Direction::Local, f),
                        None => break,
                    }
                }
            }
        }

        // 3. Switch allocation and traversal. The route closure is
        //    the single routing decision point: static XY, or the
        //    adaptive table biased by per-channel health and queue
        //    depth (the link monitors' view).
        let adaptive = self.cfg.routing.is_adaptive();
        for n in mesh.node_ids() {
            let idx = n.0 as usize;
            // Split borrows: collect sendability and health first.
            let mut can = [true; 5];
            let mut score = [0u32; 5];
            for dir in Direction::CARDINAL {
                let ch = self.channels.get(&(n.0, dir.index()));
                can[dir.index()] = ch.is_some_and(Channel::can_accept);
                score[dir.index()] = ch.map_or(LinkHealth::Failed.penalty(), |c| {
                    c.health().penalty() + c.in_flight.len() as u32
                });
            }
            let routes = &self.routes;
            let moves = self.routers[idx].step(
                |in_port, flit| {
                    if adaptive {
                        routes.choose(flit.src, n, in_port, flit.dst, |d| score[d.index()])
                    } else {
                        Some(mesh.route_xy(n, flit.dst))
                    }
                },
                |d| can[d.index()],
            );
            for (out, flit) in moves {
                if out == Direction::Local {
                    // Ejected at the destination core.
                    if flit.is_tail() {
                        let pkt = self
                            .packets
                            .remove(&flit.packet)
                            .expect("tail of unknown packet");
                        debug_assert_eq!(pkt.dst, n, "packet ejected at wrong node");
                        let xor = self.corrupt_xor.remove(&flit.packet).unwrap_or(0);
                        if measuring {
                            let lat = now + 1 - pkt.inject_cycle;
                            stats.delivered_packets += 1;
                            stats.latency_sum += lat;
                            stats.latency_max = stats.latency_max.max(lat);
                            stats.latencies.push(lat);
                            if xor != 0 {
                                stats.corrupt_packets += 1;
                            }
                        }
                        if let Some(tag) = self.flow_tags.remove(&flit.packet) {
                            let engine = self.flows.as_mut().expect("tagged packet needs flows");
                            if let Some(ack) = engine.on_delivery(n, tag, xor, now) {
                                self.spawn_packet(ack.from, ack.to, 1, Some(ack.tag));
                                created += 1;
                                if measuring {
                                    stats.offered_packets += 1;
                                    stats.injected_flits += 1;
                                }
                            }
                        }
                    }
                    if measuring {
                        stats.delivered_flits += 1;
                    }
                } else {
                    let ch = self
                        .channels
                        .get_mut(&(n.0, out.index()))
                        .expect("send over missing channel");
                    ch.send(now, flit);
                }
            }
        }

        // 4. Return buffer credits for flits the routers consumed: the
        //    credit view is refreshed from actual occupancy (simpler
        //    and equivalent to credit return signalling at this
        //    abstraction level).
        for ((node, diri), ch) in &mut self.channels {
            let from = NodeId(*node);
            let dir = Direction::ALL[*diri];
            let to = mesh.neighbor(from, dir).expect("channel to nowhere");
            ch.buffer_credits =
                self.routers[to.0 as usize].free_slots(dir.opposite());
        }

        self.cycle += 1;
        created
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChannelProtection, ErrorProcess};
    use crate::flow::FlowSpec;

    fn base_cfg(link: LinkModel) -> NetworkConfig {
        NetworkConfig {
            mesh: Mesh::new(4, 4),
            link,
            input_queue_flits: 8,
            packet_len_flits: 4,
            faults: None,
            routing: RoutingMode::XyStatic,
            link_kills: Vec::new(),
        }
    }

    fn lossy_cfg(process: ErrorProcess, protection: ChannelProtection) -> NetworkConfig {
        NetworkConfig {
            faults: Some(ChannelFaults::new(process, protection)),
            ..base_cfg(LinkModel::ideal())
        }
    }

    #[test]
    fn light_load_delivers_everything_quickly() {
        let mut net = Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, 0.05, 7);
        let stats = net.run(4_000, 1_000);
        assert!(stats.delivered_packets > 100, "only {} delivered", stats.delivered_packets);
        // At 5% load a 4x4 mesh is far from saturation: latency near
        // the zero-load bound (a few hops × (1+link latency) + serialization).
        assert!(stats.avg_latency() < 30.0, "latency {}", stats.avg_latency());
        // Delivered ≈ offered (no growing backlog).
        let ratio = stats.delivered_packets as f64 / stats.offered_packets as f64;
        assert!(ratio > 0.9, "backlog building at light load: {ratio}");
    }

    #[test]
    fn latency_grows_with_load() {
        let lat_at = |rate: f64| {
            let mut net =
                Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, rate, 11);
            net.run(6_000, 2_000).avg_latency()
        };
        let low = lat_at(0.05);
        let high = lat_at(0.55);
        assert!(
            high > low * 1.5,
            "latency did not grow with load: {low} -> {high}"
        );
    }

    #[test]
    fn slow_serial_channel_saturates_earlier() {
        // Serial link at 40% of router bandwidth: accepted throughput
        // must cap well below the parallel link's.
        let serial = LinkModel { latency_cycles: 5, flits_per_cycle: 0.4, wires: 10 };
        let rate = 0.6; // beyond the serial capacity
        let mut par =
            Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, rate, 13);
        let sp = par.run(6_000, 2_000).throughput_fpnc();
        let mut ser = Network::new(base_cfg(serial), TrafficPattern::UniformRandom, rate, 13);
        let ss = ser.run(6_000, 2_000).throughput_fpnc();
        assert!(
            ss < sp * 0.85,
            "serial {ss:.3} should saturate below parallel {sp:.3}"
        );
        assert!(ss > 0.1, "serial network moved almost nothing: {ss:.3}");
    }

    #[test]
    fn transpose_and_hotspot_patterns_deliver() {
        for pat in [
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Hotspot { node: NodeId(0), permille: 300 },
        ] {
            let mut net = Network::new(base_cfg(LinkModel::ideal()), pat, 0.05, 23);
            let stats = net.run(4_000, 1_000);
            assert!(stats.delivered_packets > 50, "{pat:?} delivered {}", stats.delivered_packets);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut net = Network::new(
                base_cfg(LinkModel::ideal()),
                TrafficPattern::UniformRandom,
                0.2,
                99,
            );
            let s = net.run(3_000, 1_000);
            (s.delivered_packets, s.latency_sum, s.delivered_flits)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_idles() {
        let mut net =
            Network::new(base_cfg(LinkModel::ideal()), TrafficPattern::UniformRandom, 0.0, 1);
        let stats = net.run(1_000, 100);
        assert_eq!(stats.delivered_packets, 0);
        assert_eq!(stats.offered_packets, 0);
    }

    #[test]
    fn error_free_lossy_network_matches_loss_free_exactly() {
        // p = 0 with no bandwidth tax: the lossy path must be
        // cycle-identical to faults = None, down to every counter.
        let run = |cfg: NetworkConfig| {
            let mut net = Network::new(cfg, TrafficPattern::UniformRandom, 0.2, 99);
            net.run(3_000, 1_000)
        };
        let clean = run(base_cfg(LinkModel::ideal()));
        let lossless =
            run(lossy_cfg(ErrorProcess::Iid { p: 0.0 }, ChannelProtection::Off));
        assert_eq!(clean, lossless);
        assert!(clean.recovery.counts.is_quiet());
        assert_eq!(clean.link_recovery.len(), 48, "4x4 mesh has 48 directed channels");
    }

    #[test]
    fn lossy_channels_replay_and_still_deliver() {
        let mut net = Network::new(
            lossy_cfg(ErrorProcess::Iid { p: 0.05 }, ChannelProtection::Crc8),
            TrafficPattern::UniformRandom,
            0.05,
            17,
        );
        let stats = net.run(6_000, 1_000);
        assert!(stats.delivered_packets > 100, "delivered {}", stats.delivered_packets);
        assert!(stats.recovery.counts.errors > 50, "errors {}", stats.recovery.counts.errors);
        assert_eq!(
            stats.recovery.counts.replays,
            stats.recovery.counts.nacks + stats.recovery.counts.timeouts
        );
        assert_eq!(stats.recovery.counts.undetected, 0, "CRC-8 detects everything");
        assert_eq!(stats.corrupt_packets, 0);
        assert_eq!(stats.recovery.failed_links, 0);
    }

    #[test]
    fn unprotected_channels_deliver_silent_corruption() {
        let mut net = Network::new(
            lossy_cfg(ErrorProcess::Iid { p: 0.05 }, ChannelProtection::Off),
            TrafficPattern::UniformRandom,
            0.05,
            17,
        );
        let stats = net.run(6_000, 1_000);
        assert!(stats.delivered_packets > 100);
        assert!(stats.recovery.counts.undetected > 50);
        assert_eq!(stats.recovery.counts.replays, 0, "nothing detected, nothing replayed");
        assert!(stats.corrupt_packets > 0, "corruption must surface at ejection");
    }

    #[test]
    fn bursty_errors_escalate_to_resync_and_degrade() {
        // A vicious burst process: long bad states erroring always.
        let process = ErrorProcess::GilbertElliott {
            p_good: 0.0,
            p_bad: 0.95,
            good_to_bad: 0.02,
            bad_to_good: 0.02,
        };
        let mut net = Network::new(
            lossy_cfg(process, ChannelProtection::Crc8),
            TrafficPattern::UniformRandom,
            0.1,
            23,
        );
        let stats = net.run(20_000, 1_000);
        assert!(stats.recovery.counts.resyncs > 0, "bursts must trigger resyncs");
        assert!(stats.recovery.counts.degrades > 0, "stuck heads must degrade");
        assert!(stats.recovery.counts.degraded_cycles > 0);
        assert!(stats.delivered_packets > 50, "the network must still make progress");
    }

    #[test]
    fn permanent_failure_kills_the_channel_but_not_the_run() {
        let faults = ChannelFaults::new(
            ErrorProcess::GilbertElliott {
                p_good: 0.0,
                p_bad: 1.0,
                good_to_bad: 0.01,
                bad_to_good: 0.001,
            },
            ChannelProtection::Crc8,
        )
        .with_permanent_failure(2);
        let cfg = NetworkConfig { faults: Some(faults), ..base_cfg(LinkModel::ideal()) };
        // Measure from cycle 0: the interesting claim is that traffic
        // moved *before* the storm killed the links and the rest of
        // the mesh kept routing after.
        let mut net = Network::new(cfg, TrafficPattern::UniformRandom, 0.1, 31);
        let stats = net.run(30_000, 0);
        assert!(stats.recovery.failed_links > 0, "the storm must kill at least one link");
        assert!(stats.recovery.counts.failed);
        // Failed links strand in-flight packets but the rest routes
        // on; the stranding is no longer silent — flits caught on the
        // dead wires are counted.
        assert!(stats.delivered_packets > 0);
        assert!(
            stats.in_flight + stats.stranded_packets > 0,
            "packets behind a dead link stay stranded"
        );
        assert!(stats.stranded_flits > 0, "the dead wires held flits");
    }

    #[test]
    fn flows_complete_on_a_clean_network() {
        let flows = FlowConfig::new(vec![
            FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 50 },
            FlowSpec { src: NodeId(3), dst: NodeId(12), packets: 50 },
        ]);
        let mut net = Network::with_flows(base_cfg(LinkModel::ideal()), &flows, 5);
        let report = net.run_flows(200_000);
        assert!(report.completed, "clean flows must finish");
        assert!(!report.livelocked);
        for f in &report.flows {
            assert_eq!(f.delivered, 50);
            assert_eq!(f.acked, 50);
            assert_eq!(f.counts.dup_delivered, 0);
            assert_eq!(f.counts.accepted_corrupt, 0);
            assert_eq!(f.counts.corrupt_payloads, 0);
        }
        assert!(report.jain > 0.9, "symmetric flows should share fairly: {}", report.jain);
        assert!(report.stalls.is_empty(), "no stalls on a clean network");
    }

    #[test]
    fn flows_survive_a_lossy_network_exactly_once() {
        let flows = FlowConfig::new(vec![
            FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 40 },
            FlowSpec { src: NodeId(12), dst: NodeId(3), packets: 40 },
        ]);
        let cfg = lossy_cfg(ErrorProcess::bursty(0.05, 0.6, 0.05), ChannelProtection::Parity);
        let mut net = Network::with_flows(cfg, &flows, 77);
        let report = net.run_flows(500_000);
        assert!(report.completed, "flows must heal through the storm");
        for f in &report.flows {
            assert_eq!(f.delivered, 40, "flow {:?}", f.flow);
            assert_eq!(f.counts.dup_delivered, 0, "exactly-once violated");
            assert_eq!(f.counts.accepted_corrupt, 0, "corruption accepted");
        }
        // Parity misses ~10% of upsets: the end-to-end check must have
        // actually caught some corrupted payloads for this test to
        // mean anything.
        let e2e_catches: u64 = report.flows.iter().map(|f| f.counts.corrupt_payloads).sum();
        let retx: u64 = report.flows.iter().map(|f| f.counts.retx).sum();
        assert!(retx > 0, "a lossy run without retransmissions proves nothing");
        assert!(
            e2e_catches > 0 || report.net.recovery.counts.undetected == 0,
            "undetected upsets on payloads must be caught end-to-end"
        );
    }

    #[test]
    fn watchdog_names_flows_starved_by_a_dead_link() {
        // Kill channels fast and certainly: every flit errors, so the
        // first heads hit the resync ladder and the links die. The
        // flows can never complete; the watchdog must name them and
        // abort instead of hanging until max_cycles.
        let faults = ChannelFaults::new(ErrorProcess::Iid { p: 1.0 }, ChannelProtection::Crc8)
            .with_permanent_failure(1);
        let cfg = NetworkConfig { faults: Some(faults), ..base_cfg(LinkModel::ideal()) };
        let flows = FlowConfig::new(vec![FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 10 }]);
        let mut net = Network::with_flows(cfg, &flows, 3);
        let report = net.run_flows(2_000_000);
        assert!(!report.completed);
        assert!(report.livelocked, "the watchdog must declare livelock");
        assert!(report.cycles < 2_000_000, "and abort early");
        let last = report.stalls.last().expect("livelock must come with a report");
        assert!(last.hard);
        assert_eq!(last.starved.len(), 1);
        assert_eq!(last.starved[0].src, NodeId(0));
        assert!(
            last.stalled_channels.iter().any(|c| c.state == "failed"),
            "the dead channel must be named: {:?}",
            last.stalled_channels
        );
        assert!(report.net.recovery.failed_links > 0);
    }

    /// Flows whose XY paths cross row 0 between columns 1 and 2, in
    /// both directions — a single dead physical link starves both.
    fn row0_flows() -> FlowConfig {
        FlowConfig::new(vec![
            FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 30 },
            FlowSpec { src: NodeId(3), dst: NodeId(12), packets: 30 },
        ])
    }

    fn kill_row0(cycle: u64) -> Vec<LinkKill> {
        LinkKill::both_ways(&Mesh::new(4, 4), cycle, NodeId(1), Direction::East).to_vec()
    }

    #[test]
    fn adaptive_routing_survives_a_scheduled_link_kill() {
        let cfg = NetworkConfig {
            routing: RoutingMode::adaptive(),
            link_kills: kill_row0(100),
            ..base_cfg(LinkModel::ideal())
        };
        let mut net = Network::with_flows(cfg, &row0_flows(), 9);
        let report = net.run_flows(300_000);
        assert!(report.completed, "rerouting must carry the flows around the dead link");
        assert!(!report.livelocked);
        for f in &report.flows {
            assert_eq!(f.delivered, 30, "flow {:?}", f.flow);
            assert_eq!(f.counts.dup_delivered, 0, "exactly-once violated");
            assert_eq!(f.counts.accepted_corrupt, 0);
        }
        assert!(report.net.reconfig_epochs >= 1, "the kill must trigger an epoch");
        assert_eq!(report.net.recovery.failed_links, 2, "both directions died");
    }

    #[test]
    fn xy_static_livelocks_at_the_same_scheduled_kill() {
        // The twin of the test above with rerouting disabled: the old
        // behaviour — flows starve behind the dead row-0 link and the
        // watchdog names them — is pinned, not silently changed.
        let cfg = NetworkConfig { link_kills: kill_row0(100), ..base_cfg(LinkModel::ideal()) };
        let mut net = Network::with_flows(cfg, &row0_flows(), 9);
        let report = net.run_flows(300_000);
        assert!(!report.completed, "static XY has no way around the dead row");
        assert!(report.livelocked, "the watchdog must declare livelock");
        let last = report.stalls.last().expect("livelock must come with a report");
        assert!(last.hard);
        assert!(!last.starved.is_empty(), "the starved flows must be named");
        assert!(
            last.stalled_channels.iter().any(|c| c.state == "failed"),
            "the dead channel must be named: {:?}",
            last.stalled_channels
        );
        assert_eq!(report.net.reconfig_epochs, 0, "XY never reconfigures");
        assert!(report.net.residual_flits > 0, "wedged flits stay in the fabric");
    }

    #[test]
    fn adaptive_salvage_and_strand_counters_are_consistent() {
        // Open-loop traffic with a mid-run kill: every stranded flit
        // and packet is accounted, and the table rebuilt exactly once.
        let cfg = NetworkConfig {
            routing: RoutingMode::adaptive(),
            link_kills: kill_row0(1_000),
            ..base_cfg(LinkModel::ideal())
        };
        let mut net = Network::new(cfg, TrafficPattern::UniformRandom, 0.2, 31);
        let stats = net.run(6_000, 0);
        assert_eq!(stats.reconfig_epochs, 1);
        assert_eq!(stats.recovery.failed_links, 2);
        assert!(stats.delivered_packets > 100, "the mesh keeps routing after the kill");
        assert_eq!(
            stats.injected_flits,
            stats.delivered_flits + stats.stranded_flits + stats.residual_flits,
            "flit conservation violated"
        );
    }

    #[test]
    fn severing_a_node_triggers_the_last_resort_retrain() {
        // Kill BOTH links adjacent to corner node 0: no failure-set
        // subset keeps it reachable, so reconfiguration alone cannot
        // route around the hole. The fabric manager must revive
        // channels through the deep retrain and the flows must still
        // complete exactly once.
        let mesh = Mesh::new(4, 4);
        let mut kills = LinkKill::both_ways(&mesh, 150, NodeId(0), Direction::East).to_vec();
        kills.extend(LinkKill::both_ways(&mesh, 150, NodeId(0), Direction::South));
        let cfg = NetworkConfig {
            routing: RoutingMode::adaptive(),
            link_kills: kills,
            ..base_cfg(LinkModel::ideal())
        };
        let flows = FlowConfig::new(vec![
            FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 30 },
            FlowSpec { src: NodeId(15), dst: NodeId(0), packets: 30 },
        ]);
        let mut net = Network::with_flows(cfg, &flows, 9);
        let report = net.run_flows(300_000);
        assert!(report.completed, "retrained links must keep the severed corner alive");
        for f in &report.flows {
            assert_eq!(f.delivered, 30, "flow {:?}", f.flow);
            assert_eq!(f.counts.dup_delivered, 0, "exactly-once violated");
        }
        assert!(
            report.net.retrained_links >= 2,
            "isolating a corner needs at least one revived link per direction, got {}",
            report.net.retrained_links
        );
        assert_eq!(report.net.recovery.failed_links, 4, "all four kills are recorded");
    }

    #[test]
    fn flow_runs_are_deterministic_given_seed() {
        let run = || {
            let flows = FlowConfig::new(vec![
                FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 30 },
                FlowSpec { src: NodeId(5), dst: NodeId(10), packets: 30 },
            ]);
            let cfg = lossy_cfg(ErrorProcess::Iid { p: 0.03 }, ChannelProtection::Crc8);
            let mut net = Network::with_flows(cfg, &flows, 41);
            net.run_flows(500_000)
        };
        assert_eq!(run(), run());
    }
}
