//! Dynamic channel fault processes and recovery accounting.
//!
//! PR 5 gave the gate-level links NACK/retry/timeout/degrade
//! semantics; at the network layer loss used to be a *static* derate
//! ([`LinkModel::with_retransmission`](crate::LinkModel::with_retransmission))
//! that nothing reacted to. This module makes loss an *event*: every
//! channel of a [`Network`](crate::Network) can carry a seeded
//! [`ChannelFaults`] describing a per-word error process (i.i.d. or
//! bursty Gilbert–Elliott), the protection mode of the underlying
//! link (which decides whether an upset is *detected* and replayed or
//! slips through), and the escalation ladder the channel climbs when
//! the medium stays hostile — mirroring `sal-link::retry`:
//!
//! 1. **NACK replay** — a detected upset consumes the word at the
//!    receiver and pulses the backward NACK wire; the head-of-line
//!    flit is retransmitted after the NACK flight time.
//! 2. **Timeout** — some failures eat the handshake itself (a
//!    swallowed strobe has no word to NACK); the transmitter notices
//!    by timeout, with the horizon doubling per consecutive failure
//!    (exponential backoff from the counter-gated delay chain).
//! 3. **Resync** — after [`ChannelFaults::resync_after`] consecutive
//!    failures of the same flit the watchdog drains the link
//!    (return-to-zero) and replays; the channel is unavailable for
//!    the drain window.
//! 4. **Transient degrade** — after
//!    [`ChannelFaults::degrade_after`] resyncs on one stuck flit the
//!    channel halves its bandwidth for
//!    [`ChannelFaults::degrade_cycles`], the network-level image of
//!    I3's degraded per-transfer pacing.
//! 5. **Permanent failure** — optionally, after
//!    [`ChannelFaults::fail_after_resyncs`] resyncs on one flit the
//!    channel is declared dead: nothing is ever delivered again and
//!    the flow-level progress watchdog is expected to name it.
//!
//! Everything is deterministic: each channel derives its own RNG from
//! the network seed and its `(node, direction)` coordinates, so
//! per-channel draws are independent of traffic on other channels and
//! of the injection stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-word (per-flit, at this abstraction) error process.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ErrorProcess {
    /// Independent, identically distributed upsets: each transmitted
    /// flit fails with probability `p`.
    Iid {
        /// Per-flit error probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst process: the medium wanders
    /// between a good state (error probability `p_good`) and a bad
    /// state (`p_bad`), with per-flit transition probabilities. Bursts
    /// arise because `bad_to_good` is small.
    GilbertElliott {
        /// Error probability per flit in the good state.
        p_good: f64,
        /// Error probability per flit in the bad state.
        p_bad: f64,
        /// Probability of switching good → bad per flit.
        good_to_bad: f64,
        /// Probability of switching bad → good per flit.
        bad_to_good: f64,
    },
}

impl ErrorProcess {
    /// A Gilbert–Elliott process with stationary mean error rate
    /// `mean_p`, bursty: the bad state errors at `p_bad` and persists
    /// for `1 / bad_to_good` flits on average.
    ///
    /// # Panics
    ///
    /// Panics if `mean_p` is not in `[0, p_bad]` or `p_bad` is not in
    /// `(0, 1]`.
    pub fn bursty(mean_p: f64, p_bad: f64, bad_to_good: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_bad) && p_bad > 0.0, "p_bad {p_bad} outside (0, 1]");
        assert!(
            (0.0..=p_bad).contains(&mean_p),
            "mean error rate {mean_p} above the bad-state rate {p_bad}"
        );
        // Stationary bad-state occupancy f solves f * p_bad = mean_p;
        // the transition rates then satisfy g2b/(g2b + b2g) = f.
        let f = mean_p / p_bad;
        let good_to_bad = if f >= 1.0 { 1.0 } else { f * bad_to_good / (1.0 - f) };
        ErrorProcess::GilbertElliott {
            p_good: 0.0,
            p_bad,
            good_to_bad: good_to_bad.min(1.0),
            bad_to_good,
        }
    }

    /// The stationary mean per-flit error probability of the process.
    pub fn mean_p(&self) -> f64 {
        match *self {
            ErrorProcess::Iid { p } => p,
            ErrorProcess::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                if good_to_bad + bad_to_good == 0.0 {
                    return p_good;
                }
                let f_bad = good_to_bad / (good_to_bad + bad_to_good);
                p_good * (1.0 - f_bad) + p_bad * f_bad
            }
        }
    }

    /// True if the process can never produce an error (the lossy path
    /// must then be cycle-identical to the loss-free path).
    pub fn is_error_free(&self) -> bool {
        match *self {
            ErrorProcess::Iid { p } => p == 0.0,
            ErrorProcess::GilbertElliott { p_good, p_bad, good_to_bad, .. } => {
                p_good == 0.0 && (p_bad == 0.0 || good_to_bad == 0.0)
            }
        }
    }
}

/// Network-level image of the link protection modes of PR 5: decides
/// what fraction of upsets the receiver *detects* (and therefore
/// NACKs for replay) versus delivers corrupted, and what the
/// protection costs in channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ChannelProtection {
    /// No link-level check: every upset is delivered as silent
    /// corruption. Only an end-to-end check can save the payload.
    Off,
    /// Per-slice parity: catches isolated upsets but is blind to the
    /// stale-slice-replay class the chaos-soak campaign exposed
    /// (a replayed slice is self-consistently parity-valid), modelled
    /// as a 90 % detection probability.
    Parity,
    /// Per-word CRC-8: detects everything the fault model can throw
    /// (the campaign measured zero undetected corruptions), at the
    /// cost of one check byte per four payload bytes of serial time.
    Crc8,
}

impl ChannelProtection {
    /// Probability that an upset flit is detected (NACKed + replayed)
    /// rather than delivered corrupted.
    pub fn detect_prob(self) -> f64 {
        match self {
            ChannelProtection::Off => 0.0,
            ChannelProtection::Parity => 0.9,
            ChannelProtection::Crc8 => 1.0,
        }
    }

    /// Bandwidth multiplier on the underlying [`LinkModel`]
    /// (`crate::LinkModel::flits_per_cycle`): the CRC check byte rides
    /// the serial wire after each 32-bit word (`32/40`); parity rides
    /// a dedicated extra wire and costs no time.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            ChannelProtection::Off | ChannelProtection::Parity => 1.0,
            ChannelProtection::Crc8 => 32.0 / 40.0,
        }
    }

    /// Extra physical wires over the unprotected serialized channel
    /// (parity interleaves one odd-parity wire beside the data).
    pub fn extra_wires(self) -> u32 {
        match self {
            ChannelProtection::Off | ChannelProtection::Crc8 => 0,
            ChannelProtection::Parity => 1,
        }
    }

    /// Label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ChannelProtection::Off => "off",
            ChannelProtection::Parity => "parity",
            ChannelProtection::Crc8 => "crc8",
        }
    }
}

/// Seeded dynamic fault configuration for every channel of a network.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChannelFaults {
    /// The per-flit error process.
    pub process: ErrorProcess,
    /// Link protection (decides detection vs. silent corruption).
    pub protection: ChannelProtection,
    /// Cycles for a NACK to fly back and the replay to relaunch
    /// (beyond the normal forward latency).
    pub nack_latency: u32,
    /// Fraction of *detected* failures that are discovered by timeout
    /// instead of NACK (the upset ate the handshake itself).
    pub timeout_frac: f64,
    /// Base timeout horizon, cycles; doubles per consecutive failure.
    pub base_timeout: u32,
    /// Consecutive failures of one flit before a watchdog resync.
    pub resync_after: u32,
    /// Cycles the channel is unavailable during a resync drain.
    pub resync_penalty: u32,
    /// Resyncs on one stuck flit before a transient degrade.
    pub degrade_after: u32,
    /// Cycles a transient degrade (halved bandwidth) lasts.
    pub degrade_cycles: u32,
    /// Resyncs on one stuck flit before the channel fails permanently
    /// (`None`: never).
    pub fail_after_resyncs: Option<u32>,
}

impl ChannelFaults {
    /// A conventional starting point: the given process and
    /// protection with recovery constants proportioned like the
    /// gate-level controller (fast NACK, 25 % timeout discovery,
    /// resync after 4 straight failures, degrade after 2 resyncs,
    /// never a permanent failure).
    pub fn new(process: ErrorProcess, protection: ChannelProtection) -> Self {
        ChannelFaults {
            process,
            protection,
            nack_latency: 4,
            timeout_frac: 0.25,
            base_timeout: 16,
            resync_after: 4,
            resync_penalty: 32,
            degrade_after: 2,
            degrade_cycles: 512,
            fail_after_resyncs: None,
        }
    }

    /// Enables permanent link failure after `n` resyncs on one flit.
    #[must_use]
    pub fn with_permanent_failure(mut self, n: u32) -> Self {
        self.fail_after_resyncs = Some(n);
        self
    }
}

/// Recovery counters of one channel, the network-level mirror of
/// `sal_link::RecoveryCounts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct RecoveryCounts {
    /// Upsets the error process produced on delivered-or-replayed
    /// flits (detected + undetected).
    pub errors: u64,
    /// Detected upsets discovered by NACK.
    pub nacks: u64,
    /// Detected upsets discovered by timeout.
    pub timeouts: u64,
    /// Head-of-line retransmissions (= nacks + timeouts).
    pub replays: u64,
    /// Watchdog resync drains.
    pub resyncs: u64,
    /// Transient degrade episodes (halved bandwidth).
    pub degrades: u64,
    /// Cycles spent in the degraded state.
    pub degraded_cycles: u64,
    /// Upsets delivered as silent corruption (protection missed them).
    pub undetected: u64,
    /// The channel failed permanently.
    pub failed: bool,
}

impl RecoveryCounts {
    /// True if nothing ever happened on this channel.
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryCounts::default()
    }

    /// Accumulates `other` into `self` (for network-wide totals;
    /// `failed` becomes a count via [`RecoveryTotals`], so here it
    /// ORs).
    pub fn absorb(&mut self, other: &RecoveryCounts) {
        self.errors += other.errors;
        self.nacks += other.nacks;
        self.timeouts += other.timeouts;
        self.replays += other.replays;
        self.resyncs += other.resyncs;
        self.degrades += other.degrades;
        self.degraded_cycles += other.degraded_cycles;
        self.undetected += other.undetected;
        self.failed |= other.failed;
    }
}

/// Aggregate recovery picture of a whole network run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct RecoveryTotals {
    /// Sum of all channels' counters (`failed` ORs; see
    /// [`RecoveryTotals::failed_links`] for the count).
    pub counts: RecoveryCounts,
    /// Channels that failed permanently.
    pub failed_links: u64,
}

/// Availability state of a lossy channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChannelState {
    /// Normal operation.
    Up,
    /// Watchdog drain in progress until the given cycle.
    Resyncing {
        /// First cycle of normal operation after the drain.
        until: u64,
    },
    /// Transient degrade (halved bandwidth) until the given cycle.
    Degraded {
        /// First cycle of full-bandwidth operation.
        until: u64,
    },
    /// Permanently dead.
    Failed,
}

impl ChannelState {
    /// Short label for watchdog diagnoses and JSON.
    pub(crate) fn label(self) -> &'static str {
        match self {
            ChannelState::Up => "up",
            ChannelState::Resyncing { .. } => "resyncing",
            ChannelState::Degraded { .. } => "degraded",
            ChannelState::Failed => "failed",
        }
    }
}

/// What the fault process decided for one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Upset {
    /// The flit arrived intact.
    Clean,
    /// Detected upset: the receiver NACKed the word.
    Nacked,
    /// Detected upset that ate the handshake: discovered by timeout.
    TimedOut,
    /// Undetected upset: delivered with the given nonzero payload
    /// bit-flip mask.
    Corrupted(u64),
}

/// The seeded per-channel fault engine: owns the RNG and the
/// Gilbert–Elliott state, produces an [`Upset`] per delivery attempt.
#[derive(Debug)]
pub(crate) struct FaultDice {
    cfg: ChannelFaults,
    rng: StdRng,
    ge_bad: bool,
}

impl FaultDice {
    /// Derives the channel RNG from the network seed and the channel
    /// coordinates (splitmix-style mixing keeps streams independent).
    pub(crate) fn new(cfg: ChannelFaults, network_seed: u64, node: u16, dir: usize) -> Self {
        let mixed = network_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(node) << 3 | dir as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        FaultDice { cfg, rng: StdRng::seed_from_u64(mixed), ge_bad: false }
    }

    pub(crate) fn cfg(&self) -> &ChannelFaults {
        &self.cfg
    }

    /// Rolls the dice for one flit delivery attempt.
    pub(crate) fn roll(&mut self) -> Upset {
        let p = match self.cfg.process {
            ErrorProcess::Iid { p } => p,
            ErrorProcess::GilbertElliott { p_good, p_bad, good_to_bad, bad_to_good } => {
                let flip = if self.ge_bad { bad_to_good } else { good_to_bad };
                if self.rng.gen_bool(flip.clamp(0.0, 1.0)) {
                    self.ge_bad = !self.ge_bad;
                }
                if self.ge_bad {
                    p_bad
                } else {
                    p_good
                }
            }
        };
        if !self.rng.gen_bool(p.clamp(0.0, 1.0)) {
            return Upset::Clean;
        }
        if self.rng.gen_bool(self.cfg.protection.detect_prob()) {
            if self.rng.gen_bool(self.cfg.timeout_frac.clamp(0.0, 1.0)) {
                Upset::TimedOut
            } else {
                Upset::Nacked
            }
        } else {
            // A single flipped payload bit: enough to falsify any
            // end-to-end check that actually looks at the payload.
            Upset::Corrupted(1u64 << self.rng.gen_range(0..64u32))
        }
    }

    /// Timeout horizon for the `consec`-th consecutive failure:
    /// exponential backoff, capped at 2^6 × base.
    pub(crate) fn timeout_horizon(&self, consec: u32) -> u64 {
        u64::from(self.cfg.base_timeout) << consec.min(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_process_hits_requested_mean() {
        let proc = ErrorProcess::bursty(0.05, 0.5, 0.02);
        assert!((proc.mean_p() - 0.05).abs() < 1e-12, "mean {}", proc.mean_p());
        let mut dice = FaultDice::new(
            ChannelFaults::new(proc, ChannelProtection::Crc8),
            42,
            3,
            1,
        );
        let n = 200_000;
        let errors = (0..n).filter(|_| dice.roll() != Upset::Clean).count();
        let rate = errors as f64 / f64::from(n);
        assert!((rate - 0.05).abs() < 0.01, "sampled error rate {rate}");
    }

    #[test]
    fn bursts_cluster_errors() {
        // With the same mean rate, the GE process must show a much
        // higher probability of back-to-back errors than i.i.d.
        let mean = 0.05;
        let count_pairs = |proc: ErrorProcess| {
            let mut dice =
                FaultDice::new(ChannelFaults::new(proc, ChannelProtection::Crc8), 7, 0, 0);
            let rolls: Vec<bool> = (0..100_000).map(|_| dice.roll() != Upset::Clean).collect();
            rolls.windows(2).filter(|w| w[0] && w[1]).count()
        };
        let iid_pairs = count_pairs(ErrorProcess::Iid { p: mean });
        let ge_pairs = count_pairs(ErrorProcess::bursty(mean, 0.5, 0.02));
        assert!(
            ge_pairs > iid_pairs * 3,
            "bursty pairs {ge_pairs} vs iid pairs {iid_pairs}"
        );
    }

    #[test]
    fn error_free_processes_never_upset() {
        for proc in [
            ErrorProcess::Iid { p: 0.0 },
            ErrorProcess::bursty(0.0, 0.5, 0.1),
        ] {
            assert!(proc.is_error_free());
            let mut dice =
                FaultDice::new(ChannelFaults::new(proc, ChannelProtection::Off), 1, 1, 1);
            assert!((0..10_000).all(|_| dice.roll() == Upset::Clean));
        }
    }

    #[test]
    fn protection_decides_detection() {
        let roll_kinds = |protection: ChannelProtection| {
            let mut dice = FaultDice::new(
                ChannelFaults::new(ErrorProcess::Iid { p: 1.0 }, protection),
                9,
                2,
                3,
            );
            let mut detected = 0;
            let mut corrupt = 0;
            for _ in 0..10_000 {
                match dice.roll() {
                    Upset::Nacked | Upset::TimedOut => detected += 1,
                    Upset::Corrupted(mask) => {
                        assert_ne!(mask, 0, "corruption must flip at least one bit");
                        corrupt += 1;
                    }
                    Upset::Clean => panic!("p = 1 cannot be clean"),
                }
            }
            (detected, corrupt)
        };
        let (d_off, c_off) = roll_kinds(ChannelProtection::Off);
        assert_eq!(d_off, 0);
        assert_eq!(c_off, 10_000);
        let (d_crc, c_crc) = roll_kinds(ChannelProtection::Crc8);
        assert_eq!(c_crc, 0);
        assert_eq!(d_crc, 10_000);
        let (d_par, c_par) = roll_kinds(ChannelProtection::Parity);
        assert!(c_par > 0 && d_par > c_par * 5, "parity split {d_par}/{c_par}");
    }

    #[test]
    fn timeout_backoff_doubles_and_caps() {
        let dice = FaultDice::new(
            ChannelFaults::new(ErrorProcess::Iid { p: 0.5 }, ChannelProtection::Crc8),
            1,
            0,
            0,
        );
        assert_eq!(dice.timeout_horizon(0), 16);
        assert_eq!(dice.timeout_horizon(1), 32);
        assert_eq!(dice.timeout_horizon(3), 128);
        assert_eq!(dice.timeout_horizon(6), 1024);
        assert_eq!(dice.timeout_horizon(60), 1024, "horizon must cap, not overflow");
    }

    #[test]
    fn recovery_counts_absorb_and_quiet() {
        let mut total = RecoveryCounts::default();
        assert!(total.is_quiet());
        let one = RecoveryCounts { errors: 3, nacks: 2, timeouts: 1, replays: 3, ..Default::default() };
        total.absorb(&one);
        total.absorb(&RecoveryCounts { failed: true, ..Default::default() });
        assert_eq!(total.errors, 3);
        assert_eq!(total.replays, 3);
        assert!(total.failed);
        assert!(!total.is_quiet());
    }

    #[test]
    fn channel_seeds_are_independent() {
        let cfg = ChannelFaults::new(ErrorProcess::Iid { p: 0.5 }, ChannelProtection::Crc8);
        let draws = |node: u16, dir: usize| {
            let mut d = FaultDice::new(cfg, 1234, node, dir);
            (0..64).map(|_| d.roll()).collect::<Vec<_>>()
        };
        assert_eq!(draws(1, 2), draws(1, 2), "same coordinates, same stream");
        assert_ne!(draws(1, 2), draws(1, 3), "different dir, different stream");
        assert_ne!(draws(1, 2), draws(2, 2), "different node, different stream");
    }
}
