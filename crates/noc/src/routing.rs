//! Fault-tolerant routing: turn-model adaptivity and online
//! reconfiguration around failed links.
//!
//! PR 7 made link failure *diagnosable* — a dead channel ends in a
//! named livelock — but the mesh could not *survive* it, because
//! routing was hardcoded XY ([`Mesh::route_xy`]). This module replaces
//! that single static decision with a [`RouteTable`] that runs one of
//! two deadlock-free regimes and is rebuilt online whenever a channel
//! enters `Failed`:
//!
//! * **Whole mesh (no failed links): odd-even turn model.** Minimal
//!   adaptive routing with Chiu's column-parity turn restrictions —
//!   an EN or ES turn is forbidden in even columns, an NW or SW turn
//!   in odd columns. Every minimal quadrant keeps at least one legal
//!   output, the restricted turn set admits no cycle, and adaptivity
//!   between the legal outputs is what lets the router *bias away
//!   from* Degraded or Resyncing channels instead of queueing into
//!   them.
//!
//! * **Mesh with holes (any failed link): up\*/down\* routing.** Nodes
//!   are totally ordered by a BFS from node 0 over the surviving
//!   topology; a directed channel is *up* if it points to a
//!   smaller-ordered node, *down* otherwise. A legal path is `up*
//!   down*` — once a packet takes a down channel it may never climb
//!   again — which makes the channel-dependency graph acyclic for any
//!   failure pattern, including ones XY cannot route around. The
//!   committed-phase of a packet is recovered from its *input port*
//!   (the orientation of the channel it arrived on), so the table
//!   stays stateless per hop. Routes are minimal *within the legal
//!   path set*: every hop strictly decreases the precomputed
//!   legal-path distance, so routes are loop-free and reach the
//!   destination whenever a legal path exists; destinations with no
//!   surviving legal path are reported as unroutable (`None`). When a
//!   failure pattern severs part of the fabric outright (see
//!   [`RouteTable::unroutable_pairs`]), the network's last-resort
//!   retrain revives the minimal failed channels rather than abandon
//!   a node.
//!
//! Reconfiguration is an *epoch*: the network drains the dead wire,
//! salvages wormholes whose head had not yet crossed (they simply
//! re-route), strands severed packets for the transport layer to
//! retransmit, rebuilds this table against the new failure set, and
//! pauses injection for a bounded number of cycles. See DESIGN.md §5h
//! for the deadlock-freedom argument across an epoch boundary.

use std::collections::{BTreeSet, VecDeque};

use crate::{Direction, Mesh, NodeId};

/// How a [`crate::Network`] routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RoutingMode {
    /// Dimension-ordered XY, computed statically from the mesh — the
    /// pre-reroute behaviour. Link failures are *not* routed around:
    /// flows crossing a dead link starve and the watchdog names them.
    XyStatic,
    /// Fault-tolerant adaptive routing over a live [`RouteTable`]:
    /// odd-even adaptivity while the mesh is whole, up*/down*
    /// reconfiguration around failed links, health-biased choice
    /// between permitted outputs.
    Adaptive {
        /// Cycles injection is paused after each reconfiguration
        /// (models the table-update epoch of a real fabric).
        reconfig_pause: u32,
    },
}

impl RoutingMode {
    /// Adaptive routing with the default reconfiguration pause.
    pub fn adaptive() -> Self {
        RoutingMode::Adaptive { reconfig_pause: 64 }
    }

    /// True for the adaptive variant.
    pub fn is_adaptive(self) -> bool {
        matches!(self, RoutingMode::Adaptive { .. })
    }
}

/// A scheduled permanent failure of one directed channel: at `cycle`,
/// the channel leaving `node` toward `dir` dies. Directed scenarios
/// (as opposed to storm-driven escalation) make failure placement a
/// controlled experiment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkKill {
    /// Cycle the channel fails.
    pub cycle: u64,
    /// Upstream node of the channel.
    pub node: NodeId,
    /// Direction the channel points.
    pub dir: Direction,
}

impl LinkKill {
    /// Both directions of the physical link between `a` and its
    /// neighbour in `dir`, killed at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no neighbour in `dir`.
    pub fn both_ways(mesh: &Mesh, cycle: u64, a: NodeId, dir: Direction) -> [LinkKill; 2] {
        let b = mesh.neighbor(a, dir).expect("kill of a link off the mesh edge");
        [
            LinkKill { cycle, node: a, dir },
            LinkKill { cycle, node: b, dir: dir.opposite() },
        ]
    }
}

/// Channel health classes the route choice biases on, in preference
/// order. Fed by the per-node link monitors (the network observes
/// each directed channel's `ChannelState` and queue depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkHealth {
    /// Fully operational.
    Up,
    /// Transiently at half bandwidth.
    Degraded,
    /// Draining; refuses new flits until the drain window ends.
    Resyncing,
    /// Permanently dead.
    Failed,
}

impl LinkHealth {
    /// Score penalty of this class (composed with queue depth by the
    /// network's scoring closure; `Failed` is effectively infinite).
    pub fn penalty(self) -> u32 {
        match self {
            LinkHealth::Up => 0,
            LinkHealth::Degraded => 64,
            LinkHealth::Resyncing => 256,
            LinkHealth::Failed => 1 << 24,
        }
    }
}

const INF: u32 = u32::MAX;

/// Up phase: the packet may still take up or down channels.
const UP: usize = 0;
/// Down phase: the packet has committed to descending.
const DOWN: usize = 1;

/// The live routing function of a network: permitted-output sets per
/// `(source, current, input port, destination)`, rebuilt against the
/// current failed-channel set on every reconfiguration epoch.
#[derive(Debug, Clone)]
pub struct RouteTable {
    mesh: Mesh,
    /// Directed channels currently failed, as `(node, dir index)`.
    failed: BTreeSet<(u16, u8)>,
    /// Reconfiguration epochs performed (0 = pristine table).
    epoch: u64,
    /// Up*/down* total order per node (`INF`: unreachable from the
    /// root over the surviving topology). Empty while the mesh is
    /// whole (odd-even mode needs no precomputation).
    order: Vec<u32>,
    /// `dist[dst][node][phase]`: shortest legal-path length to `dst`
    /// from `node` in `phase`, hops; `INF` when no legal path exists.
    dist: Vec<Vec<[u32; 2]>>,
}

impl RouteTable {
    /// A pristine table for a whole mesh (odd-even regime).
    pub fn new(mesh: Mesh) -> Self {
        RouteTable { mesh, failed: BTreeSet::new(), epoch: 0, order: Vec::new(), dist: Vec::new() }
    }

    /// Reconfiguration epochs performed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current failed-channel set.
    pub fn failed(&self) -> &BTreeSet<(u16, u8)> {
        &self.failed
    }

    /// Rebuilds the table against a new failed-channel set (one
    /// reconfiguration epoch). With an empty set the table returns to
    /// the odd-even regime; otherwise the up*/down* order and
    /// legal-path distances are recomputed over the survivors.
    pub fn rebuild(&mut self, failed: BTreeSet<(u16, u8)>) {
        self.failed = failed;
        self.epoch += 1;
        if self.failed.is_empty() {
            self.order.clear();
            self.dist.clear();
            return;
        }
        let n = self.mesh.nodes();
        // Total order: BFS from node 0 over links with at least one
        // surviving direction. BFS discovery order is level-monotone,
        // so every reachable non-root node has a lower-ordered
        // neighbour (its BFS parent) — an up path to the root always
        // exists when the directed channels along it survive.
        let mut order = vec![INF; n];
        let mut q = VecDeque::new();
        order[0] = 0;
        q.push_back(NodeId(0));
        let mut next = 1u32;
        while let Some(u) = q.pop_front() {
            for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
                let Some(v) = self.mesh.neighbor(u, dir) else { continue };
                let either_alive = !self.failed.contains(&(u.0, dir.index() as u8))
                    || !self.failed.contains(&(v.0, dir.opposite().index() as u8));
                if order[v.0 as usize] == INF && either_alive {
                    order[v.0 as usize] = next;
                    next += 1;
                    q.push_back(v);
                }
            }
        }
        self.order = order;
        // Legal-path distances: per destination, a reverse BFS over
        // the two-phase automaton (up edges keep the Up phase, down
        // edges commit to Down).
        self.dist = (0..n as u16)
            .map(|d| self.legal_distances(NodeId(d)))
            .collect();
    }

    /// True if the directed channel `at → dir` survives.
    fn usable(&self, at: NodeId, dir: Direction) -> bool {
        self.mesh.neighbor(at, dir).is_some()
            && !self.failed.contains(&(at.0, dir.index() as u8))
    }

    /// Channel orientation: `at → v` is up iff `v` is closer to the
    /// root in the total order.
    fn is_up(&self, at: NodeId, v: NodeId) -> bool {
        self.order[v.0 as usize] < self.order[at.0 as usize]
    }

    /// Reverse BFS from `dst` over the phase automaton.
    fn legal_distances(&self, dst: NodeId) -> Vec<[u32; 2]> {
        let n = self.mesh.nodes();
        let mut dist = vec![[INF; 2]; n];
        let mut q = VecDeque::new();
        dist[dst.0 as usize] = [0, 0];
        q.push_back((dst, UP));
        q.push_back((dst, DOWN));
        while let Some((v, phase)) = q.pop_front() {
            let dv = dist[v.0 as usize][phase];
            // Predecessors (u, pu) with a usable channel u → v whose
            // traversal lands in `phase`.
            for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
                // u is v's neighbour; the channel u → v points back.
                let Some(u) = self.mesh.neighbor(v, dir) else { continue };
                let back = dir.opposite();
                if !self.usable(u, back) {
                    continue;
                }
                let up = self.is_up(u, v);
                // An up traversal arrives in Up phase; a down
                // traversal arrives in Down phase.
                if (up && phase == UP) || (!up && phase == DOWN) {
                    let preds: &[usize] = if up { &[UP] } else { &[UP, DOWN] };
                    for &pu in preds {
                        if dist[u.0 as usize][pu] == INF {
                            dist[u.0 as usize][pu] = dv + 1;
                            q.push_back((u, pu));
                        }
                    }
                }
            }
        }
        dist
    }

    /// Ordered `(src, dst)` pairs a *fresh injection* cannot legally
    /// reach (`src ≠ dst`, no legal path from the Up phase). Non-zero
    /// means the failure pattern has severed part of the fabric — the
    /// routability test behind the last-resort link retrain in
    /// `Network::handle_failures`.
    pub fn unroutable_pairs(&self) -> u32 {
        if self.failed.is_empty() {
            // Odd-even on a whole mesh routes every pair.
            return 0;
        }
        let n = self.mesh.nodes();
        let mut gaps = 0;
        for dst in 0..n {
            for src in 0..n {
                if src != dst && self.dist[dst][src][UP] == INF {
                    gaps += 1;
                }
            }
        }
        gaps
    }

    /// The phase a packet occupies at `at` given the port it arrived
    /// on (`Local`: freshly injected, still free to climb).
    fn phase_of(&self, at: NodeId, in_port: Direction) -> usize {
        match in_port {
            Direction::Local => UP,
            p => {
                let from = self.mesh.neighbor(at, p).expect("arrival from off the mesh");
                if self.is_up(from, at) { UP } else { DOWN }
            }
        }
    }

    /// Permitted outputs under the active regime, unbiased. Empty
    /// means unroutable (destination severed from the survivors).
    pub fn permitted(
        &self,
        src: NodeId,
        at: NodeId,
        in_port: Direction,
        dst: NodeId,
    ) -> Vec<Direction> {
        if at == dst {
            return vec![Direction::Local];
        }
        if self.failed.is_empty() {
            self.odd_even_permitted(src, at, dst)
        } else {
            self.updown_permitted(at, in_port, dst)
        }
    }

    /// The single routing decision point: permitted outputs ranked by
    /// `(score, direction index)` — the network's score feeds channel
    /// health and queue depth in, so route choice bends away from
    /// Degraded and Resyncing links deterministically.
    pub fn choose(
        &self,
        src: NodeId,
        at: NodeId,
        in_port: Direction,
        dst: NodeId,
        mut score: impl FnMut(Direction) -> u32,
    ) -> Option<Direction> {
        self.permitted(src, at, in_port, dst)
            .into_iter()
            .min_by_key(|&d| (score(d), d.index()))
    }

    /// Chiu's odd-even ROUTE function: the minimal outputs whose
    /// turns respect the column-parity restrictions. Needs the source
    /// column (packets may turn freely in it — no eastward travel has
    /// happened yet).
    fn odd_even_permitted(&self, src: NodeId, at: NodeId, dst: NodeId) -> Vec<Direction> {
        let (cx, cy) = self.mesh.coords(at);
        let (dx, dy) = self.mesh.coords(dst);
        let (sx, _) = self.mesh.coords(src);
        let ydir = if dy > cy { Direction::South } else { Direction::North };
        let mut out = Vec::with_capacity(2);
        match dx.cmp(&cx) {
            std::cmp::Ordering::Equal => out.push(ydir),
            std::cmp::Ordering::Greater => {
                // Eastbound: E→N/E→S turns are only legal in odd
                // columns, so the Y moves are offered there (and in
                // the source column, where no eastward travel has
                // happened); the final E hop into an even destination
                // column must land with the Y offset already resolved.
                if dy == cy {
                    out.push(Direction::East);
                } else {
                    if cx % 2 == 1 || cx == sx {
                        out.push(ydir);
                    }
                    if dx % 2 == 1 || dx - cx != 1 {
                        out.push(Direction::East);
                    }
                }
            }
            std::cmp::Ordering::Less => {
                // Westbound: N→W/S→W turns are only legal in even
                // columns, so Y detour capacity is offered there; West
                // itself is always minimal and legal.
                out.push(Direction::West);
                if cx % 2 == 0 && dy != cy {
                    out.push(ydir);
                }
            }
        }
        debug_assert!(!out.is_empty(), "odd-even left no minimal output {at} -> {dst}");
        out
    }

    /// Up*/down* permitted outputs: usable channels legal from the
    /// current phase that strictly decrease the legal-path distance.
    fn updown_permitted(&self, at: NodeId, in_port: Direction, dst: NodeId) -> Vec<Direction> {
        let phase = self.phase_of(at, in_port);
        let dcur = self.dist[dst.0 as usize][at.0 as usize][phase];
        let mut out = Vec::with_capacity(4);
        if dcur == INF {
            return out;
        }
        for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
            if !self.usable(at, dir) {
                continue;
            }
            let v = self.mesh.neighbor(at, dir).expect("usable channel has a far end");
            let up = self.is_up(at, v);
            if phase == DOWN && up {
                continue; // down→up turns are what up*/down* forbids
            }
            let nphase = if up { UP } else { DOWN };
            if self.dist[dst.0 as usize][v.0 as usize][nphase].saturating_add(1) == dcur {
                out.push(dir);
            }
        }
        debug_assert!(!out.is_empty(), "finite legal distance but no decreasing output");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks every adaptive branch from `src` toward `dst`, asserting
    /// minimality and collecting `(travel_from, travel_to, column)`
    /// turns; `in_port` tracks the arrival port for phase recovery.
    #[allow(clippy::too_many_arguments)]
    fn walk_all(
        t: &RouteTable,
        mesh: Mesh,
        src: NodeId,
        at: NodeId,
        in_port: Direction,
        dst: NodeId,
        steps: u32,
        turns: &mut Vec<(Direction, Direction, u16)>,
    ) {
        assert!(steps <= 64, "routing loop {src} -> {dst}");
        if at == dst {
            return;
        }
        let permitted = t.permitted(src, at, in_port, dst);
        assert!(!permitted.is_empty(), "no route {src} -> {dst} at {at}");
        for dir in permitted {
            let next = mesh.neighbor(at, dir).expect("route led off the mesh");
            if in_port != Direction::Local {
                // Travel direction into `at` is the opposite of the
                // port the flit arrived on.
                turns.push((in_port.opposite(), dir, mesh.coords(at).0));
            }
            walk_all(t, mesh, src, next, dir.opposite(), dst, steps + 1, turns);
        }
    }

    #[test]
    fn odd_even_routes_are_minimal_and_complete() {
        let mesh = Mesh::new(5, 4);
        let t = RouteTable::new(mesh);
        for src in mesh.node_ids() {
            for dst in mesh.node_ids() {
                if src == dst {
                    continue;
                }
                // Every adaptive branch must be minimal: walk with a
                // step budget of exactly hops(src, dst).
                let mut at = src;
                let mut in_port = Direction::Local;
                let mut steps = 0;
                // Deterministic first-choice walk.
                while at != dst {
                    let dir = t
                        .choose(src, at, in_port, dst, |_| 0)
                        .expect("whole mesh must route everywhere");
                    at = mesh.neighbor(at, dir).expect("off mesh");
                    in_port = dir.opposite();
                    steps += 1;
                    assert!(steps <= mesh.hops(src, dst), "non-minimal {src} -> {dst}");
                }
                assert_eq!(steps, mesh.hops(src, dst));
            }
        }
    }

    #[test]
    fn odd_even_turns_respect_column_parity() {
        let mesh = Mesh::new(5, 4);
        let t = RouteTable::new(mesh);
        let mut turns = Vec::new();
        for src in mesh.node_ids() {
            for dst in mesh.node_ids() {
                if src != dst {
                    walk_all(&t, mesh, src, src, Direction::Local, dst, 0, &mut turns);
                }
            }
        }
        assert!(!turns.is_empty());
        for (from, to, col) in turns {
            let even = col % 2 == 0;
            match (from, to) {
                // Rule 1/2: no EN or ES turn in an even column.
                (Direction::East, Direction::North | Direction::South) => {
                    assert!(!even, "E->{to:?} turn in even column {col}");
                }
                // No NW or SW turn in an odd column.
                (Direction::North | Direction::South, Direction::West) => {
                    assert!(even, "{from:?}->W turn in odd column {col}");
                }
                // 180° turns never.
                (a, b) => assert_ne!(b, a.opposite(), "180 degree turn in column {col}"),
            }
        }
    }

    #[test]
    fn updown_reroutes_around_every_single_link_failure() {
        let mesh = Mesh::new(4, 4);
        for n in mesh.node_ids() {
            for dir in [Direction::North, Direction::South, Direction::East, Direction::West] {
                if mesh.neighbor(n, dir).is_none() {
                    continue;
                }
                let mut t = RouteTable::new(mesh);
                let mut failed = BTreeSet::new();
                for k in LinkKill::both_ways(&mesh, 0, n, dir) {
                    failed.insert((k.node.0, k.dir.index() as u8));
                }
                t.rebuild(failed);
                assert_eq!(t.epoch(), 1);
                for src in mesh.node_ids() {
                    for dst in mesh.node_ids() {
                        if src == dst {
                            continue;
                        }
                        // Follow first choices; must reach dst without
                        // ever using a failed channel or looping.
                        let mut at = src;
                        let mut in_port = Direction::Local;
                        let mut steps = 0;
                        while at != dst {
                            let d = t
                                .choose(src, at, in_port, dst, |_| 0)
                                .unwrap_or_else(|| panic!("unroutable {src}->{dst} killing {n} {dir:?}"));
                            assert!(
                                !t.failed().contains(&(at.0, d.index() as u8)),
                                "routed into the dead channel"
                            );
                            at = mesh.neighbor(at, d).expect("off mesh");
                            in_port = d.opposite();
                            steps += 1;
                            assert!(steps <= 32, "loop {src}->{dst}");
                        }
                        // Minimal-or-detour: never shorter than Manhattan.
                        assert!(steps >= mesh.hops(src, dst));
                    }
                }
            }
        }
    }

    #[test]
    fn updown_never_turns_down_then_up() {
        let mesh = Mesh::new(4, 4);
        let mut t = RouteTable::new(mesh);
        let mut failed = BTreeSet::new();
        for k in LinkKill::both_ways(&mesh, 0, NodeId(5), Direction::East) {
            failed.insert((k.node.0, k.dir.index() as u8));
        }
        t.rebuild(failed);
        for src in mesh.node_ids() {
            for dst in mesh.node_ids() {
                if src == dst {
                    continue;
                }
                let mut at = src;
                let mut in_port = Direction::Local;
                let mut descended = false;
                while at != dst {
                    let d = t.choose(src, at, in_port, dst, |_| 0).expect("routable");
                    let v = mesh.neighbor(at, d).expect("off mesh");
                    let up = t.is_up(at, v);
                    if descended {
                        assert!(!up, "down->up turn at {at} for {src}->{dst}");
                    }
                    descended |= !up;
                    at = v;
                    in_port = d.opposite();
                }
            }
        }
    }

    #[test]
    fn severed_destination_is_reported_unroutable() {
        // Cut node 0 (corner) off entirely: both its links die.
        let mesh = Mesh::new(4, 4);
        let mut failed = BTreeSet::new();
        for (n, d) in [(NodeId(0), Direction::East), (NodeId(0), Direction::South)] {
            for k in LinkKill::both_ways(&mesh, 0, n, d) {
                failed.insert((k.node.0, k.dir.index() as u8));
            }
        }
        let mut t = RouteTable::new(mesh);
        t.rebuild(failed);
        assert_eq!(
            t.choose(NodeId(5), NodeId(5), Direction::Local, NodeId(0), |_| 0),
            None,
            "severed destination must be unroutable, not a loop"
        );
        assert_eq!(t.choose(NodeId(0), NodeId(0), Direction::Local, NodeId(5), |_| 0), None);
        // Other pairs still route.
        assert!(t.choose(NodeId(5), NodeId(5), Direction::Local, NodeId(15), |_| 0).is_some());
    }

    #[test]
    fn health_bias_prefers_the_cleaner_permitted_output() {
        let mesh = Mesh::new(4, 4);
        let t = RouteTable::new(mesh);
        // From n5 (1,1) to n15 (3,3): odd column 1 eastbound offers
        // both South and East. Penalizing East must flip the choice.
        let src = NodeId(5);
        let p = t.permitted(src, src, Direction::Local, NodeId(15));
        assert!(p.contains(&Direction::East) && p.contains(&Direction::South), "{p:?}");
        let east_bad = t.choose(src, src, Direction::Local, NodeId(15), |d| {
            u32::from(d == Direction::East) * LinkHealth::Degraded.penalty()
        });
        assert_eq!(east_bad, Some(Direction::South));
        let south_bad = t.choose(src, src, Direction::Local, NodeId(15), |d| {
            u32::from(d == Direction::South) * LinkHealth::Degraded.penalty()
        });
        assert_eq!(south_bad, Some(Direction::East));
    }

    #[test]
    fn rebuild_to_empty_returns_to_odd_even() {
        let mesh = Mesh::new(4, 4);
        let mut t = RouteTable::new(mesh);
        let mut failed = BTreeSet::new();
        failed.insert((5u16, Direction::East.index() as u8));
        t.rebuild(failed);
        assert!(!t.failed().is_empty());
        t.rebuild(BTreeSet::new());
        assert_eq!(t.epoch(), 2);
        // Odd-even again: minimal everywhere.
        assert_eq!(
            t.choose(NodeId(0), NodeId(0), Direction::Local, NodeId(3), |_| 0),
            Some(Direction::East)
        );
    }
}
