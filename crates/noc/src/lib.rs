//! # sal-noc — the NoC substrate
//!
//! The paper studies *links*, but its motivation (§I–II) is the
//! network: switches connected by point-to-point links whose wire
//! count explodes as clocks slow down. This crate provides the
//! surrounding network the paper presumes — a cycle-driven 2-D mesh of
//! input-buffered wormhole switches with dimension-ordered (XY)
//! routing and standard synthetic traffic — with the switch-to-switch
//! channels parameterised by a [`LinkModel`] derived from the three
//! link implementations of `sal-link`.
//!
//! This lets the repository quantify the paper's system-level claim:
//! replacing wide parallel links with 8-wire serialized asynchronous
//! links keeps network throughput intact (up to the links' self-timed
//! upper bound) while cutting the wiring by 75 %.
//!
//! ```
//! use sal_noc::{LinkModel, Mesh, NetworkConfig, Network, TrafficPattern};
//!
//! let cfg = NetworkConfig {
//!     mesh: Mesh::new(4, 4),
//!     link: LinkModel::ideal(),
//!     input_queue_flits: 8,
//!     packet_len_flits: 4,
//!     faults: None,
//!     routing: sal_noc::RoutingMode::XyStatic,
//!     link_kills: Vec::new(),
//! };
//! let mut net = Network::new(cfg, TrafficPattern::UniformRandom, 0.1, 42);
//! let stats = net.run(2_000, 500);
//! assert!(stats.delivered_packets > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Beyond open-loop traffic, the crate models *lossy* channels
//! ([`ChannelFaults`]: seeded i.i.d. or bursty Gilbert–Elliott error
//! processes with a NACK/timeout/resync/degrade/fail escalation
//! ladder) and *end-to-end flows* ([`FlowConfig`]: windowed senders
//! with AIMD congestion control, cumulative acks riding the mesh, and
//! a progress watchdog that names starved flows and stalled channels
//! instead of hanging).
//!
//! Routing is pluggable ([`RoutingMode`]): static dimension-ordered
//! XY, or fault-tolerant adaptive routing ([`routing`]) that survives
//! permanent link failure by online reconfiguration — odd-even
//! turn-model adaptivity on the whole mesh, up*/down* routing around
//! holes, stranded/salvaged packet accounting, and health-biased
//! output selection away from degraded channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod flow;
mod link_model;
mod network;
mod packet;
mod router;
pub mod routing;
mod stats;
mod topology;
mod traffic;

pub use fault::{ChannelFaults, ChannelProtection, ErrorProcess, RecoveryCounts, RecoveryTotals};
pub use flow::{
    FlowConfig, FlowEngine, FlowId, FlowParams, FlowSpec, FlowStats, StallReport, StalledChannel,
    StarvedFlow, WatchdogConfig, jain_index,
};
pub use link_model::LinkModel;
pub use network::{FlowNetReport, Network, NetworkConfig};
pub use packet::{Flit, FlitKind, Packet, PacketId};
pub use router::Router;
pub use routing::{LinkHealth, LinkKill, RouteTable, RoutingMode};
pub use stats::{LinkRecovery, NetworkStats};
pub use topology::{Direction, Mesh, NodeId};
pub use traffic::TrafficPattern;
