//! Network determinism properties (satellite of the flow-recovery
//! PR): identical `(config, pattern, load, seed)` must produce
//! byte-identical [`NetworkStats`] — including the per-link recovery
//! counters — across repeated runs, and a lossy configuration whose
//! error process can never fire (`p = 0`, no bandwidth tax) must
//! match the loss-free path *exactly*, not just statistically.

use proptest::prelude::*;
use sal_noc::{
    ChannelFaults, ChannelProtection, Direction, ErrorProcess, FlowConfig, FlowSpec, LinkKill,
    LinkModel, Mesh, Network, NetworkConfig, NetworkStats, NodeId, RoutingMode, TrafficPattern,
};

fn cfg(faults: Option<ChannelFaults>) -> NetworkConfig {
    NetworkConfig {
        mesh: Mesh::new(4, 4),
        link: LinkModel::ideal(),
        input_queue_flits: 8,
        packet_len_flits: 4,
        faults,
        routing: RoutingMode::XyStatic,
        link_kills: Vec::new(),
    }
}

fn pattern_of(idx: u8) -> TrafficPattern {
    match idx % 4 {
        0 => TrafficPattern::UniformRandom,
        1 => TrafficPattern::Transpose,
        2 => TrafficPattern::BitComplement,
        _ => TrafficPattern::Hotspot { node: NodeId(5), permille: 300 },
    }
}

fn run_once(faults: Option<ChannelFaults>, pattern: TrafficPattern, load: f64, seed: u64) -> NetworkStats {
    let mut net = Network::new(cfg(faults), pattern, load, seed);
    net.run(2_500, 500)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Identical inputs, identical outputs — every field, every
    /// recovery counter, every latency sample.
    #[test]
    fn repeated_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        pat in 0u8..4,
        load_pct in 1u32..45,
        rate_mil in 0u32..80,
    ) {
        let load = f64::from(load_pct) / 100.0;
        let rate = f64::from(rate_mil) / 1000.0;
        let faults = Some(ChannelFaults::new(
            ErrorProcess::Iid { p: rate },
            ChannelProtection::Crc8,
        ));
        let a = run_once(faults, pattern_of(pat), load, seed);
        let b = run_once(faults, pattern_of(pat), load, seed);
        prop_assert_eq!(&a, &b);
        // The recovery surface is part of the contract: rows for all
        // 48 directed channels of the 4x4 mesh, in sorted order.
        prop_assert_eq!(a.link_recovery.len(), 48);
        prop_assert!(a.link_recovery.windows(2).all(|w| {
            (w[0].node, w[0].dir.index()) < (w[1].node, w[1].dir.index())
        }));
    }

    /// A lossy configuration that can never produce an error is
    /// cycle-for-cycle the loss-free path — same latencies, same
    /// counters, same (all-zero) recovery rows.
    #[test]
    fn p_zero_lossy_matches_loss_free_exactly(
        seed in 0u64..1_000_000,
        pat in 0u8..4,
        load_pct in 1u32..45,
    ) {
        let load = f64::from(load_pct) / 100.0;
        let lossless = Some(ChannelFaults::new(
            ErrorProcess::Iid { p: 0.0 },
            ChannelProtection::Off,
        ));
        let clean = run_once(None, pattern_of(pat), load, seed);
        let p0 = run_once(lossless, pattern_of(pat), load, seed);
        prop_assert_eq!(&clean, &p0);
        prop_assert!(clean.recovery.counts.is_quiet());
        prop_assert_eq!(clean.corrupt_packets, 0);
    }

    /// Flow-mode runs are deterministic too: the whole report —
    /// per-flow counters, stall reports, network stats — compares
    /// equal across repeated runs.
    #[test]
    fn flow_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        rate_mil in 0u32..60,
    ) {
        let rate = f64::from(rate_mil) / 1000.0;
        let run = || {
            let flows = FlowConfig::new(vec![
                FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 25 },
                FlowSpec { src: NodeId(12), dst: NodeId(3), packets: 25 },
            ]);
            let faults = Some(ChannelFaults::new(
                ErrorProcess::Iid { p: rate },
                ChannelProtection::Crc8,
            ));
            let mut net = Network::with_flows(cfg(faults), &flows, seed);
            net.run_flows(300_000)
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Equal seeds plus equal failure schedules yield byte-identical
    /// stats — including the new reroute counters (stranded, salvaged,
    /// reconfiguration epochs) — under adaptive routing with scheduled
    /// link kills and a lossy error process on top.
    #[test]
    fn reroute_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        kill_cycle in 200u64..1_500,
        kill_link in 0u8..24,
        rate_mil in 0u32..40,
    ) {
        let mesh = Mesh::new(4, 4);
        // Pick one interior-ish physical link from an enumerable set.
        let (node, dir) = {
            let n = NodeId(u16::from(kill_link % 12));
            let d = if kill_link < 12 { Direction::East } else { Direction::South };
            (n, d)
        };
        let run = || {
            let mut c = cfg(Some(ChannelFaults::new(
                ErrorProcess::Iid { p: f64::from(rate_mil) / 1000.0 },
                ChannelProtection::Crc8,
            )));
            c.routing = RoutingMode::adaptive();
            if mesh.neighbor(node, dir).is_some() {
                c.link_kills = LinkKill::both_ways(&mesh, kill_cycle, node, dir).to_vec();
            }
            let mut net = Network::new(c, TrafficPattern::UniformRandom, 0.15, seed);
            net.run(4_000, 0)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        if mesh.neighbor(node, dir).is_some() {
            prop_assert!(a.reconfig_epochs >= 1, "the kill must trigger an epoch");
            prop_assert!(a.recovery.failed_links >= 2, "both directions died");
        }
        prop_assert_eq!(a.stranded_flits, b.stranded_flits);
        prop_assert_eq!(a.salvaged_packets, b.salvaged_packets);
    }
}

/// The gilbert–elliott process is seeded per channel: the same
/// network seed reproduces the same burst placement regardless of how
/// many times the simulation is constructed.
#[test]
fn bursty_runs_reproduce() {
    let faults = Some(ChannelFaults::new(
        ErrorProcess::bursty(0.05, 0.6, 0.05),
        ChannelProtection::Parity,
    ));
    let a = run_once(faults, TrafficPattern::UniformRandom, 0.2, 77);
    let b = run_once(faults, TrafficPattern::UniformRandom, 0.2, 77);
    assert_eq!(a, b);
    assert!(a.recovery.counts.errors > 0, "the storm must actually fire");
}
