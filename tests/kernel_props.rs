//! Property-based tests of the simulation kernel's core invariants:
//! the three-state logic algebra, toggle accounting, and determinism.

use proptest::prelude::*;
use sal::cells::CircuitBuilder;
use sal::des::{Logic, SignalId, SimConfig, Simulator, Time, Value};
use sal::tech::St012Library;

fn arb_value(width: u8) -> impl Strategy<Value = Value> {
    (any::<u64>(), any::<u64>()).prop_map(move |(bits, x)| {
        // Build a value with some unknown bits.
        let known = Value::from_u64(width, bits);
        if x % 3 == 0 {
            known
        } else {
            // Fold the x mask in by slicing/concatenation of X parts.
            let mask = x & if width == 64 { u64::MAX } else { (1 << width) - 1 };
            let mut v = known;
            for i in 0..width {
                if mask >> i & 1 == 1 {
                    // Replace bit i with X via mux on an X select.
                    let hi_width = width - i;
                    let xpart = Value::all_x(hi_width);
                    let lo = if i == 0 {
                        xpart.slice(0, 1)
                    } else {
                        v.slice(0, i).concat(&xpart.slice(0, 1))
                    };
                    v = if i + 1 == width {
                        lo
                    } else {
                        lo.concat(&v.slice(i + 1, width - i - 1))
                    };
                }
            }
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn de_morgan_holds_with_x(a in arb_value(16), b in arb_value(16)) {
        // ¬(a ∧ b) == ¬a ∨ ¬b under three-state logic.
        let lhs = a.and(&b).not();
        let rhs = a.not().or(&b.not());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation(a in arb_value(32)) {
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn xor_with_self_is_zero_when_known(bits in any::<u64>()) {
        let a = Value::from_u64(32, bits);
        prop_assert_eq!(a.xor(&a), Value::zero(32));
    }

    #[test]
    fn and_or_absorption(a in arb_value(8)) {
        // a ∧ a == a, a ∨ a == a (idempotence survives X).
        prop_assert_eq!(a.and(&a), a);
        prop_assert_eq!(a.or(&a), a);
    }

    #[test]
    fn toggles_are_symmetric_and_triangle(a in arb_value(24), b in arb_value(24), c in arb_value(24)) {
        prop_assert_eq!(a.toggles_to(&b), b.toggles_to(&a));
        prop_assert_eq!(a.toggles_to(&a), 0);
        // Hamming-style triangle inequality.
        prop_assert!(a.toggles_to(&c) <= a.toggles_to(&b) + b.toggles_to(&c));
    }

    #[test]
    fn mux_selects_known_input(a in any::<u64>(), b in any::<u64>()) {
        let av = Value::from_u64(16, a);
        let bv = Value::from_u64(16, b);
        prop_assert_eq!(Value::mux(&Value::zero(1), &av, &bv), av);
        prop_assert_eq!(Value::mux(&Value::ones(1), &av, &bv), bv);
        // X select: wherever a and b agree the output is that value.
        let m = Value::mux(&Value::all_x(1), &av, &bv);
        for i in 0..16 {
            if av.bit(i) == bv.bit(i) {
                prop_assert_eq!(m.bit(i), av.bit(i));
            } else {
                prop_assert_eq!(m.bit(i), Logic::X);
            }
        }
    }

    #[test]
    fn slice_concat_inverse(bits in any::<u64>(), split in 1u8..63) {
        let v = Value::from_u64(64, bits);
        let lo = v.slice(0, split);
        let hi = v.slice(split, 64 - split);
        prop_assert_eq!(lo.concat(&hi), v);
    }

    /// Lint soundness: a randomly wired gate network that passes the
    /// connectivity pass with no errors never exposes an undriven-X
    /// value to any reader once its ports are driven — i.e. the static
    /// "undriven but read" check really does cover every way a
    /// floating net can poison a simulation. The generator sometimes
    /// injects a raw undriven signal into the pool gates draw inputs
    /// from; when a gate happens to read it the lint must fire (and
    /// the X-freedom claim is not asserted), and when the lint stays
    /// silent every signal any component reads must settle to a fully
    /// known value.
    #[test]
    fn connectivity_clean_netlists_never_read_x(
        n_ports in 1usize..4,
        gates in proptest::collection::vec((0u8..6, any::<u16>(), any::<u16>()), 1..24),
        inject_floating in any::<bool>(),
        port_bits in any::<u64>(),
    ) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        b.push_scope("prop");

        let mut pool: Vec<SignalId> = (0..n_ports)
            .map(|i| b.input(&format!("p{i}"), 1))
            .collect();
        if inject_floating {
            // A raw signal with no driver, deliberately bypassing the
            // builder so nothing ever drives it.
            pool.push(b.sim().add_signal("prop.floating", 1));
        }

        let mut read: Vec<SignalId> = Vec::new();
        for (i, &(op, ai, bi)) in gates.iter().enumerate() {
            let a = pool[ai as usize % pool.len()];
            let c = pool[bi as usize % pool.len()];
            let name = format!("g{i}");
            let out = match op {
                0 => b.inv(&name, a),
                1 => b.and2(&name, a, c),
                2 => b.or2(&name, a, c),
                3 => b.xor2(&name, a, c),
                4 => b.nand2(&name, a, c),
                _ => {
                    let d = pool[(ai as usize + bi as usize) % pool.len()];
                    read.push(d);
                    b.mux2(&name, a, c, d)
                }
            };
            read.push(a);
            if op != 0 {
                read.push(c);
            }
            pool.push(out);
        }

        // Drive every port with a known bit before snapshotting, so
        // the graph the lint sees is the graph the simulation runs.
        for (i, &p) in pool.iter().take(n_ports).enumerate() {
            let bit = port_bits >> i & 1;
            b.sim().stimulus(p, &[(Time::ZERO, Value::from_u64(1, bit))]);
        }
        b.pop_scope();
        b.finish();

        let graph = sim.netgraph();
        let mut report = sal::lint::LintReport::new();
        sal::lint::connectivity::check(&graph, &mut report);
        let clean = !report
            .errors()
            .any(|f| f.pass == sal::lint::connectivity::PASS);

        sim.run_to_quiescence().unwrap();
        if clean {
            for &sig in &read {
                let v = sim.value(sig);
                prop_assert!(
                    v.is_fully_known(),
                    "connectivity-clean netlist read X on {}: {:?}",
                    graph.signal(sig).path,
                    v
                );
            }
        } else if inject_floating {
            // The only structural defect the generator can create is
            // the floating net; an error means a gate read it.
            prop_assert!(report.errors().any(|f| f.path.contains("floating")));
        }
    }

    #[test]
    fn stimulus_replay_is_deterministic(
        schedule in proptest::collection::vec((0u64..10_000, any::<u64>()), 1..40)
    ) {
        let run = || {
            let mut sim = Simulator::with_config(SimConfig { trace: true, ..Default::default() });
            let s = sim.add_signal("s", 32);
            sim.set_signal_energy(s, 1.0);
            let mut sched: Vec<(Time, Value)> = schedule
                .iter()
                .map(|&(t, v)| (Time::from_ps(t), Value::from_u64(32, v)))
                .collect();
            sched.sort_by_key(|&(t, _)| t);
            sim.stimulus(s, &sched);
            sim.run_to_quiescence().unwrap();
            (sim.toggles(s), sim.events_processed(), sim.now())
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn energy_is_toggles_times_weight() {
    let mut sim = Simulator::new();
    let s = sim.add_signal("s", 8);
    sim.set_signal_energy(s, 2.5);
    sim.stimulus(
        s,
        &[
            (Time::ZERO, Value::zero(8)),
            (Time::from_ps(10), Value::from_u64(8, 0xFF)),
            (Time::from_ps(20), Value::from_u64(8, 0xF0)),
        ],
    );
    sim.run_to_quiescence().unwrap();
    let expected = sim.toggles(s) as f64 * 2.5;
    assert!((sim.subtree_energy_fj("") - expected).abs() < 1e-9);
}
