//! Cross-crate integration: the NoC substrate driven by link models
//! derived from the gate-level links.

use sal::des::Time;
use sal::link::{LinkConfig, LinkFamily};
use sal::noc::{
    ChannelFaults, ChannelProtection, ErrorProcess, FlowConfig, FlowSpec, LinkModel, Mesh,
    Network, NetworkConfig, NodeId, TrafficPattern,
};

fn net(link: LinkModel, pattern: TrafficPattern, rate: f64, seed: u64) -> Network {
    Network::new(
        NetworkConfig {
            mesh: Mesh::new(4, 4),
            link,
            input_queue_flits: 8,
            packet_len_flits: 4,
            faults: None,
            routing: sal::noc::RoutingMode::XyStatic,
            link_kills: Vec::new(),
        },
        pattern,
        rate,
        seed,
    )
}

#[test]
fn serialized_mesh_carries_uniform_traffic_at_paper_clocks() {
    // At 100–300 MHz the serialized links keep up with the routers:
    // the mesh behaves like the parallel one, with one-third the wires.
    for period_ps in [10_000u64, 3_333] {
        let cfg = LinkConfig { clk_period: Time::from_ps(period_ps), ..LinkConfig::default() };
        let m_sync = LinkModel::from_link(LinkFamily::Sync, &cfg);
        let m_ser = LinkModel::from_link(LinkFamily::PerWord, &cfg);
        assert!(m_ser.wires * 3 <= m_sync.wires);
        let s_sync = net(m_sync, TrafficPattern::UniformRandom, 0.3, 3).run(6_000, 2_000);
        let s_ser = net(m_ser, TrafficPattern::UniformRandom, 0.3, 3).run(6_000, 2_000);
        let t_sync = s_sync.throughput_fpnc();
        let t_ser = s_ser.throughput_fpnc();
        assert!(
            (t_ser - t_sync).abs() / t_sync < 0.1,
            "period {period_ps} ps: serialized {t_ser:.3} vs parallel {t_sync:.3}"
        );
    }
}

#[test]
fn overdriven_serial_links_saturate_the_mesh_first() {
    // At 600 MHz the per-word link's self-timed rate (<1 flit/cycle)
    // becomes the bottleneck under heavy load.
    let cfg = LinkConfig { clk_period: Time::from_ps(1_667), ..LinkConfig::default() };
    let m_sync = LinkModel::from_link(LinkFamily::Sync, &cfg);
    let m_ser = LinkModel::from_link(LinkFamily::PerWord, &cfg);
    assert!(m_ser.flits_per_cycle < 1.0);
    let s_sync = net(m_sync, TrafficPattern::UniformRandom, 0.6, 9).run(8_000, 2_000);
    let s_ser = net(m_ser, TrafficPattern::UniformRandom, 0.6, 9).run(8_000, 2_000);
    assert!(
        s_ser.throughput_fpnc() < s_sync.throughput_fpnc(),
        "serial {:.3} should fall below parallel {:.3} beyond the upper bound",
        s_ser.throughput_fpnc(),
        s_sync.throughput_fpnc()
    );
    assert!(s_ser.avg_latency() > s_sync.avg_latency());
}

#[test]
fn all_patterns_deliver_on_serialized_mesh() {
    let cfg = LinkConfig::default();
    let model = LinkModel::from_link(LinkFamily::PerTransfer, &cfg);
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Hotspot { node: NodeId(5), permille: 250 },
    ] {
        let stats = net(model, pattern, 0.08, 17).run(5_000, 1_000);
        assert!(
            stats.delivered_packets > 100,
            "{pattern:?}: only {} packets",
            stats.delivered_packets
        );
        let ratio = stats.delivered_packets as f64 / stats.offered_packets as f64;
        assert!(ratio > 0.85, "{pattern:?}: backlog at light load ({ratio:.2})");
    }
}

#[test]
fn flows_complete_over_a_lossy_serialized_mesh() {
    // The full stack: gate-level-derived I3 link model, seeded bursty
    // channel faults with CRC protection, windowed AIMD senders — the
    // flows must finish with exactly-once delivery and the recovery
    // ladder visibly exercised.
    let lcfg = LinkConfig::default();
    let model = LinkModel::from_link(LinkFamily::PerWord, &lcfg);
    let cfg = NetworkConfig {
        mesh: Mesh::new(4, 4),
        link: model,
        input_queue_flits: 8,
        packet_len_flits: 4,
        faults: Some(ChannelFaults::new(
            ErrorProcess::bursty(0.04, 0.6, 0.05),
            ChannelProtection::Crc8,
        )),
        routing: sal::noc::RoutingMode::XyStatic,
        link_kills: Vec::new(),
    };
    let flows = FlowConfig::new(vec![
        FlowSpec { src: NodeId(0), dst: NodeId(15), packets: 60 },
        FlowSpec { src: NodeId(15), dst: NodeId(0), packets: 60 },
        FlowSpec { src: NodeId(3), dst: NodeId(12), packets: 60 },
    ]);
    let mut net = Network::with_flows(cfg, &flows, 1234);
    let report = net.run_flows(1_000_000);
    assert!(report.completed, "flows must heal through the bursty storm");
    assert!(!report.livelocked);
    for f in &report.flows {
        assert_eq!(f.delivered, 60);
        assert_eq!(f.counts.dup_delivered, 0, "exactly-once violated");
        assert_eq!(f.counts.accepted_corrupt, 0, "silent corruption accepted");
    }
    assert!(report.net.recovery.counts.replays > 0, "the storm never hit a link");
    assert_eq!(report.net.recovery.counts.undetected, 0, "CRC-8 detects everything");
    assert!(report.jain > 0.8, "symmetric flows should share fairly: {}", report.jain);
}

#[test]
fn hotspot_saturates_below_uniform() {
    let cfg = LinkConfig::default();
    let model = LinkModel::from_link(LinkFamily::PerWord, &cfg);
    let uni = net(model, TrafficPattern::UniformRandom, 0.45, 21).run(8_000, 2_000);
    let hot = net(
        model,
        TrafficPattern::Hotspot { node: NodeId(0), permille: 600 },
        0.45,
        21,
    )
    .run(8_000, 2_000);
    assert!(
        hot.throughput_fpnc() < uni.throughput_fpnc(),
        "hotspot {:.3} must saturate below uniform {:.3}",
        hot.throughput_fpnc(),
        uni.throughput_fpnc()
    );
}
