//! Property tests of the cell library: randomly generated gate trees
//! simulated at gate level must agree with a direct software
//! evaluation of the same expression.

use proptest::prelude::*;
use sal::cells::{CircuitBuilder, UnitLibrary};
use sal::des::{SignalId, Simulator, Time, Value};

/// A small random combinational expression over `n` inputs.
#[derive(Debug, Clone)]
enum Expr {
    Input(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr(n_inputs: usize, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..n_inputs).prop_map(Expr::Input);
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(s, a, b)| Expr::Mux(Box::new(s), Box::new(a), Box::new(b))),
        ]
    })
}

impl Expr {
    /// Reference software evaluation (per bit, fully known inputs).
    fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            Expr::Input(i) => inputs[*i],
            Expr::Not(e) => !e.eval(inputs),
            Expr::And(a, b) => a.eval(inputs) && b.eval(inputs),
            Expr::Or(a, b) => a.eval(inputs) || b.eval(inputs),
            Expr::Xor(a, b) => a.eval(inputs) ^ b.eval(inputs),
            Expr::Mux(s, a, b) => {
                if s.eval(inputs) {
                    b.eval(inputs)
                } else {
                    a.eval(inputs)
                }
            }
        }
    }

    /// Builds the expression as a gate netlist; returns its output.
    fn build(
        &self,
        b: &mut CircuitBuilder<'_>,
        ins: &[SignalId],
        counter: &mut u32,
    ) -> SignalId {
        *counter += 1;
        let nm = format!("n{counter}");
        match self {
            Expr::Input(i) => ins[*i],
            Expr::Not(e) => {
                let x = e.build(b, ins, counter);
                b.inv(&nm, x)
            }
            Expr::And(x, y) => {
                let (x, y) = (x.build(b, ins, counter), y.build(b, ins, counter));
                b.and2(&nm, x, y)
            }
            Expr::Or(x, y) => {
                let (x, y) = (x.build(b, ins, counter), y.build(b, ins, counter));
                b.or2(&nm, x, y)
            }
            Expr::Xor(x, y) => {
                let (x, y) = (x.build(b, ins, counter), y.build(b, ins, counter));
                b.xor2(&nm, x, y)
            }
            Expr::Mux(s, x, y) => {
                let s = s.build(b, ins, counter);
                let (x, y) = (x.build(b, ins, counter), y.build(b, ins, counter));
                b.mux2(&nm, s, x, y)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulated gate network settles to the same value as the
    /// reference evaluation, for every expression and input vector.
    #[test]
    fn random_gate_tree_matches_reference(
        expr in arb_expr(4, 5),
        vector in any::<u8>(),
    ) {
        let inputs: Vec<bool> = (0..4).map(|i| vector >> i & 1 == 1).collect();
        let expected = expr.eval(&inputs);

        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let ins: Vec<SignalId> = (0..4).map(|i| b.input(&format!("i{i}"), 1)).collect();
        let mut counter = 0;
        let out = expr.build(&mut b, &ins, &mut counter);
        b.finish();
        for (s, &v) in ins.iter().zip(&inputs) {
            sim.stimulus(*s, &[(Time::ZERO, Value::from_bool(v))]);
        }
        sim.run_to_quiescence().unwrap();
        prop_assert_eq!(
            sim.value(out).to_u64(),
            Some(u64::from(expected)),
            "expr {:?} inputs {:?}",
            expr,
            inputs
        );
    }

    /// Glitch robustness: changing one input mid-flight still settles
    /// to the reference value for the final input vector.
    #[test]
    fn gate_tree_settles_after_input_change(
        expr in arb_expr(4, 4),
        v1 in any::<u8>(),
        v2 in any::<u8>(),
    ) {
        let final_inputs: Vec<bool> = (0..4).map(|i| v2 >> i & 1 == 1).collect();
        let expected = expr.eval(&final_inputs);

        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let ins: Vec<SignalId> = (0..4).map(|i| b.input(&format!("i{i}"), 1)).collect();
        let mut counter = 0;
        let out = expr.build(&mut b, &ins, &mut counter);
        b.finish();
        for (i, s) in ins.iter().enumerate() {
            sim.stimulus(
                *s,
                &[
                    (Time::ZERO, Value::from_bool(v1 >> i & 1 == 1)),
                    (Time::from_ns(1), Value::from_bool(v2 >> i & 1 == 1)),
                ],
            );
        }
        sim.run_to_quiescence().unwrap();
        prop_assert_eq!(sim.value(out).to_u64(), Some(u64::from(expected)));
    }
}

/// The C-element's defining invariant under random input waveforms:
/// the output only ever changes *to* the common value of its inputs.
#[test]
fn c_element_never_glitches() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..20 {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let rstn = b.input("rstn", 1);
        let z = b.celement2("z", a, c, Some(rstn), false);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        // Random edge schedules on both inputs (post-reset).
        for s in [a, c] {
            let mut t = 200u64;
            let mut level = false;
            let mut sched = vec![(Time::ZERO, Value::zero(1))];
            for _ in 0..30 {
                t += rng.gen_range(30..400);
                level = !level;
                sched.push((Time::from_ps(t), Value::from_bool(level)));
            }
            sim.stimulus(s, &sched);
        }
        // Record every committed transition of a, c and z.
        let log: Rc<RefCell<Vec<(u8, Time, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        for (tag, sig) in [(0u8, a), (1, c), (2, z)] {
            let l = log.clone();
            sim.monitor(&format!("m{tag}"), sig, move |t, v| {
                if v.is_fully_known() {
                    l.borrow_mut().push((tag, t, v.is_high()));
                }
            });
        }
        sim.run_to_quiescence().unwrap();
        // Replay: at each z transition the inputs one cell delay
        // earlier (10 ps in the UnitLibrary) must be unanimous at the
        // new value — the C-element's defining hazard-freedom rule.
        let log = log.borrow();
        // For each z transition, the decision was made one cell delay
        // before the commit; a later input edge may land inside the
        // propagation window, and two input edges may share a
        // timestamp (the commit *order* then decides what the cell
        // saw). The invariant: walking the log in commit order, the
        // latest unanimous input state observable at or before the
        // decision instant equals the new output value.
        let mut seen_z = false;
        for (zi, &(tag, t, v)) in log.iter().enumerate() {
            if tag != 2 {
                continue;
            }
            if !seen_z {
                seen_z = true; // initial reset-driven commit
                continue;
            }
            let decision = t.saturating_sub(Time::from_ps(10));
            let mut a_level = None;
            let mut c_level = None;
            let mut last_consensus = None;
            for &(tg, tt, vv) in &log[..zi] {
                if tt > decision {
                    continue;
                }
                match tg {
                    0 => a_level = Some(vv),
                    1 => c_level = Some(vv),
                    _ => {}
                }
                if a_level.is_some() && a_level == c_level {
                    last_consensus = a_level;
                }
            }
            assert_eq!(
                last_consensus,
                Some(v),
                "trial {trial}: z changed to {v} at {t} against the last input consensus"
            );
        }
    }
}
