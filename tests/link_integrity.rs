//! End-to-end data-integrity properties: any flit sequence must cross
//! any of the three links bit-exact and in order, for arbitrary buffer
//! counts, slice widths and clock speeds.

use proptest::prelude::*;
use sal::des::Time;
use sal::link::measure::{run_spec, MeasureOptions};
use sal::link::{LinkConfig, LinkFamily, LinkSpec};

fn check(family: LinkFamily, cfg: &LinkConfig, words: &[u64]) {
    let spec = LinkSpec::from_config(family, cfg).expect("valid spec");
    let run = run_spec(&spec, cfg, words, &MeasureOptions::default()).expect("clean run");
    assert_eq!(
        run.received_words(),
        words,
        "{} corrupted data (cfg {:?})",
        family.label(),
        cfg
    );
}

proptest! {
    // Each case simulates a full gate-level link; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn i1_delivers_any_sequence(
        words in proptest::collection::vec(any::<u32>(), 1..10),
        buffers in 1u32..8,
    ) {
        let cfg = LinkConfig { buffers, ..LinkConfig::default() };
        let words: Vec<u64> = words.into_iter().map(u64::from).collect();
        check(LinkFamily::Sync, &cfg, &words);
    }

    #[test]
    fn i2_delivers_any_sequence(
        words in proptest::collection::vec(any::<u32>(), 1..10),
        buffers in 1u32..8,
    ) {
        let cfg = LinkConfig { buffers, ..LinkConfig::default() };
        let words: Vec<u64> = words.into_iter().map(u64::from).collect();
        check(LinkFamily::PerTransfer, &cfg, &words);
    }

    #[test]
    fn i3_delivers_any_sequence(
        words in proptest::collection::vec(any::<u32>(), 1..10),
        buffers in 1u32..8,
    ) {
        let cfg = LinkConfig { buffers, ..LinkConfig::default() };
        let words: Vec<u64> = words.into_iter().map(u64::from).collect();
        check(LinkFamily::PerWord, &cfg, &words);
    }

    #[test]
    fn async_links_survive_random_clock_rates(
        period_ps in 1_500u64..20_000,
        seed in any::<u32>(),
    ) {
        let cfg = LinkConfig {
            clk_period: Time::from_ps(period_ps),
            ..LinkConfig::default()
        };
        let words: Vec<u64> = (0..6).map(|i| (seed as u64).wrapping_mul(i + 1) & 0xFFFF_FFFF).collect();
        check(LinkFamily::PerTransfer, &cfg, &words);
        check(LinkFamily::PerWord, &cfg, &words);
    }

    #[test]
    fn alternative_slice_widths_round_trip(
        pick in 0usize..3,
        words in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        let slice_width = [4u8, 8, 16][pick];
        let cfg = LinkConfig { slice_width, ..LinkConfig::default() };
        let words: Vec<u64> = words.into_iter().map(u64::from).collect();
        check(LinkFamily::PerTransfer, &cfg, &words);
        check(LinkFamily::PerWord, &cfg, &words);
    }
}

#[test]
fn sixty_four_flits_sustained_all_links() {
    let words: Vec<u64> = (0..64).map(|i| (i * 0x9E37_79B9) & 0xFFFF_FFFF).collect();
    for family in LinkFamily::ALL {
        check(family, &LinkConfig::default(), &words);
    }
}

#[test]
fn sixteen_bit_flit_configuration() {
    let cfg = LinkConfig { flit_width: 16, slice_width: 4, ..LinkConfig::default() };
    let words: Vec<u64> = vec![0xFFFF, 0x0000, 0xA5A5, 0x5A5A, 0x8001];
    for family in LinkFamily::ALL {
        check(family, &cfg, &words);
    }
}
