//! Failure-injection and stress scenarios: hard stalls, reset
//! behaviour, undriven inputs, oscillation containment.

use sal::cells::CircuitBuilder;
use sal::des::{SimConfig, SimError, Simulator, Time, Value};
use sal::link::testbench::{
    attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
};
use sal::link::{generate, LinkConfig, LinkFamily, LinkSpec};
use sal::tech::St012Library;

/// Builds a link with a source/sink pair, returning the records.
fn harness(
    family: LinkFamily,
    cfg: &LinkConfig,
    words: Vec<u64>,
    stall_fn: Box<dyn FnMut(u64) -> bool>,
) -> (Simulator, sal::link::testbench::Record, sal::link::testbench::Record) {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let spec = LinkSpec::from_config(family, cfg).expect("valid spec");
    let h = generate(&mut b, &spec, "link", cfg).expect("link builds");
    b.finish();
    sim.stimulus(
        h.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ps(300), Value::one(1))],
    );
    let (src, sent) =
        SyncFlitSource::new(h.clk, h.stall_out, h.flit_in, h.valid_in, cfg.flit_width, words);
    attach_sync_source(&mut sim, "src", src, Time::ZERO);
    let (snk, received) =
        SyncFlitSink::with_stall_fn(h.clk, h.valid_out, h.flit_out, h.stall_in, stall_fn);
    attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
    (sim, sent, received)
}

#[test]
fn permanently_stalled_sink_never_corrupts() {
    // Receiver refuses everything: no delivery, no panic, and the
    // sending switch eventually throttles to a stop (FIFO + link full).
    for family in LinkFamily::ALL {
        let words: Vec<u64> = (1..=24).collect();
        let (mut sim, sent, received) =
            harness(family, &LinkConfig::default(), words, Box::new(|_| true));
        sim.run_until(Time::from_us(2)).unwrap();
        assert!(received.borrow().is_empty(), "{} delivered under hard stall", family.label());
        // The link + FIFOs can buffer only a bounded number of flits.
        assert!(
            sent.borrow().len() < 16,
            "{} accepted everything despite a dead receiver",
            family.label()
        );
    }
}

#[test]
fn stall_release_resumes_cleanly() {
    // Stall hard for 50 cycles, then release: everything arrives, in
    // order, exactly once.
    for family in LinkFamily::ALL {
        let words: Vec<u64> = (1..=10).map(|i| i * 0x0101_0101).collect();
        let (mut sim, _, received) = harness(
            family,
            &LinkConfig::default(),
            words.clone(),
            Box::new(|c| c < 50),
        );
        sim.run_until(Time::from_us(4)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words, "{} after stall release", family.label());
    }
}

#[test]
fn erratic_stall_pattern_is_lossless() {
    // A pseudo-random stall pattern exercises every flow-control path.
    for family in LinkFamily::ALL {
        let words: Vec<u64> = (0..16).map(|i| (i * 0x2468_ACE1) & 0xFFFF_FFFF).collect();
        let mut lfsr = 0xACE1u32;
        let stall_fn = move |_c: u64| {
            lfsr = (lfsr >> 1) ^ (if lfsr & 1 == 1 { 0xB400 } else { 0 });
            lfsr & 3 == 0
        };
        let (mut sim, _, received) =
            harness(family, &LinkConfig::default(), words.clone(), Box::new(stall_fn));
        sim.run_until(Time::from_us(4)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words, "{} under erratic stall", family.label());
    }
}

#[test]
fn event_budget_contains_runaway_designs() {
    // A free-running ring oscillator with a tiny event budget trips
    // the kernel's safety limit instead of hanging.
    let mut sim = Simulator::with_config(SimConfig { max_events: 5_000, trace: false });
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let en = b.input("en", 1);
    let _osc = b.ring_oscillator_stages("ro", en, 5);
    b.finish();
    sim.stimulus(en, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
    let res = sim.run_until(Time::from_us(1));
    assert!(matches!(res, Err(SimError::EventLimitExceeded { .. })));
}

#[test]
fn slow_reset_release_is_tolerated() {
    // Hold reset for a long time while the clock runs; the link must
    // come up clean and deliver everything.
    let cfg = LinkConfig::default();
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let h = generate(&mut b, &LinkSpec::paper(family), "link", &cfg).expect("link builds");
        b.finish();
        // Reset held for 20 clock cycles.
        sim.stimulus(
            h.rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(200), Value::one(1))],
        );
        let words: Vec<u64> = vec![0xFACE_FEED, 0x0BAD_CAFE, 0x1234_5678];
        let (src, _) =
            SyncFlitSource::new(h.clk, h.stall_out, h.flit_in, h.valid_in, 32, words.clone());
        let src = src.with_rstn(h.rstn);
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        let (snk, received) = SyncFlitSink::new(h.clk, h.valid_out, h.flit_out, h.stall_in);
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(Time::from_us(1)).unwrap();
        let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words, "{} after long reset", family.label());
    }
}

#[test]
fn back_to_back_bursts_with_single_flit_gaps() {
    // Alternate one accepted flit / one stall cycle at the sink for a
    // long stream: exercises the word-ack edge cases of I3.
    let words: Vec<u64> = (0..24).map(|i| (i | (i << 16)) & 0xFFFF_FFFF).collect();
    let (mut sim, _, received) = harness(
        LinkFamily::PerWord,
        &LinkConfig::default(),
        words.clone(),
        Box::new(|c| c % 2 == 0),
    );
    sim.run_until(Time::from_us(6)).unwrap();
    let got: Vec<u64> = received.borrow().iter().map(|&(_, w)| w).collect();
    assert_eq!(got, words);
}
