//! The paper's qualitative claims, asserted against this
//! reproduction's measurements (the quantitative comparison lives in
//! EXPERIMENTS.md).

use sal::des::Time;
use sal::link::measure::{run_spec, MeasureOptions};
use sal::link::testbench::worst_case_pattern;
use sal::link::{LinkConfig, LinkFamily, LinkSpec};
use sal::tech::WireModel;

fn power(family: LinkFamily, buffers: u32, clk: Time, window: Option<Time>) -> f64 {
    let spec = LinkSpec::builder()
        .family(family)
        .buffer_depth(buffers)
        .build()
        .expect("valid spec");
    let cfg = LinkConfig { clk_period: clk, ..LinkConfig::default() };
    let opts = MeasureOptions { window_override: window, ..MeasureOptions::default() };
    run_spec(&spec, &cfg, &worst_case_pattern(4, 32), &opts).expect("clean run").total_power_uw()
}

const CLK_100: Time = Time::from_ns(10);

fn clk_300() -> Time {
    Time::from_ns_f64(10.0 / 3.0)
}

#[test]
fn wires_reduced_by_75_percent() {
    let cfg = LinkConfig::default();
    assert_eq!(cfg.slice_width as f64 / cfg.flit_width as f64, 0.25);
}

#[test]
fn sync_wins_at_two_buffers_async_wins_at_eight() {
    // Paper Fig 12: "when a small number of buffers are used, such as
    // 2, the synchronous implementation uses less power … when the
    // number of buffers increase the power in the synchronous
    // implementation increases unlike the asynchronous".
    let i1_2 = power(LinkFamily::Sync, 2, CLK_100, None);
    let i2_2 = power(LinkFamily::PerTransfer, 2, CLK_100, None);
    assert!(i1_2 < i2_2, "sync should win at 2 buffers: {i1_2} vs {i2_2}");
    let i1_8 = power(LinkFamily::Sync, 8, CLK_100, None);
    let i3_8 = power(LinkFamily::PerWord, 8, CLK_100, None);
    assert!(i3_8 < i1_8, "async should win at 8 buffers: {i3_8} vs {i1_8}");
}

#[test]
fn sync_power_grows_with_buffers_async_stays_flat() {
    let i1_growth =
        power(LinkFamily::Sync, 8, CLK_100, None) / power(LinkFamily::Sync, 2, CLK_100, None);
    assert!(i1_growth > 1.8, "I1 growth {i1_growth}");
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let g = power(family, 8, CLK_100, None) / power(family, 2, CLK_100, None);
        assert!(
            g < 1.25,
            "{} power should be nearly buffer-independent, grew {g}",
            family.label()
        );
    }
    // And I3's growth is below I2's (paper: 2% vs 20%).
    let g2 = power(LinkFamily::PerTransfer, 8, CLK_100, None)
        / power(LinkFamily::PerTransfer, 2, CLK_100, None);
    let g3 =
        power(LinkFamily::PerWord, 8, CLK_100, None) / power(LinkFamily::PerWord, 2, CLK_100, None);
    assert!(g3 < g2, "per-word growth {g3} should undercut per-transfer {g2}");
}

#[test]
fn headline_power_reduction_at_300mhz_8_buffers() {
    // Paper: "power is reduced by 65% … when going from synchronous to
    // asynchronous in this case". Accept the 55–80% band (the shape
    // claim), measured with the paper's fixed-window protocol.
    let base = {
        let spec = LinkSpec::builder()
            .family(LinkFamily::Sync)
            .buffer_depth(8)
            .build()
            .expect("valid spec");
        run_spec(
            &spec,
            &LinkConfig::default(),
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        ).expect("clean run")
        .window
    };
    let i1 = power(LinkFamily::Sync, 8, clk_300(), Some(base));
    let i3 = power(LinkFamily::PerWord, 8, clk_300(), Some(base));
    let reduction = 1.0 - i3 / i1;
    assert!(
        (0.55..=0.80).contains(&reduction),
        "power reduction {reduction:.2} outside the paper's band"
    );
}

#[test]
fn sync_power_scales_with_clock_async_does_not() {
    let base = {
        let spec = LinkSpec::builder()
            .family(LinkFamily::Sync)
            .buffer_depth(8)
            .build()
            .expect("valid spec");
        run_spec(
            &spec,
            &LinkConfig::default(),
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        ).expect("clean run")
        .window
    };
    let i1_ratio =
        power(LinkFamily::Sync, 8, clk_300(), Some(base)) / power(LinkFamily::Sync, 8, CLK_100, None);
    let i3_ratio = power(LinkFamily::PerWord, 8, clk_300(), Some(base))
        / power(LinkFamily::PerWord, 8, CLK_100, None);
    assert!(i1_ratio > 2.0, "I1 should roughly track frequency, got x{i1_ratio:.2}");
    assert!(i3_ratio < i1_ratio, "I3 must scale slower than I1");
}

#[test]
fn area_overhead_is_modest() {
    // Paper Table 1: I2/I3 carry a ~20% circuit overhead over I1.
    // Accept up to 35% and require the async links to be larger.
    let area = |family| {
        run_spec(
            &LinkSpec::paper(family),
            &LinkConfig::default(),
            &worst_case_pattern(2, 32),
            &MeasureOptions::default(),
        ).expect("clean run")
        .area_um2()
    };
    let i1 = area(LinkFamily::Sync);
    let i2 = area(LinkFamily::PerTransfer);
    let i3 = area(LinkFamily::PerWord);
    assert!(i2 > i1 && i3 > i1, "async links must cost more cells");
    assert!(i2 / i1 < 1.35, "I2 overhead {:.0}%", (i2 / i1 - 1.0) * 100.0);
    assert!(i3 / i1 < 1.35, "I3 overhead {:.0}%", (i3 / i1 - 1.0) * 100.0);
}

#[test]
fn wiring_area_crossover_never_happens() {
    // Fig 11: at every length the serialized link's wiring area is
    // ~4x smaller (8+gaps vs 32+gaps wires).
    let w = WireModel::default();
    for l in [100.0, 500.0, 1000.0, 2000.0, 3000.0] {
        let ratio = w.area_um2(32, l) / w.area_um2(8, l);
        assert!((3.5..=4.2).contains(&ratio), "ratio {ratio} at {l} um");
    }
}

#[test]
fn throughput_parity_with_synchronous_link() {
    // The headline: same flits-per-second as the synchronous link with
    // a quarter of the wires, at every switch clock the paper uses.
    for mhz in [100.0_f64, 200.0, 300.0] {
        let cfg = LinkConfig {
            clk_period: Time::from_hz(mhz * 1e6),
            ..LinkConfig::default()
        };
        let words: Vec<u64> = (0..12).map(|i| (i * 0x0101_0101) & 0xFFFF_FFFF).collect();
        let i1 = run_spec(&LinkSpec::paper(LinkFamily::Sync), &cfg, &words, &MeasureOptions::default())
            .expect("clean run");
        let i3 = run_spec(&LinkSpec::paper(LinkFamily::PerWord), &cfg, &words, &MeasureOptions::default())
            .expect("clean run");
        let r1 = i1.throughput_mflits();
        let r3 = i3.throughput_mflits();
        assert!(
            (r3 - r1).abs() / r1 < 0.05,
            "at {mhz} MHz: I1 {r1:.1} vs I3 {r3:.1} MFlit/s"
        );
    }
}
