//! Waveform dump: trace one word crossing the per-word (I3)
//! serializer/deserializer pair at gate level and write a VCD file you
//! can open in GTKWave — the ring-oscillator burst, the four VALID
//! strobes and the word-level acknowledge are all visible.
//!
//! Run with: `cargo run --example waveform_dump --release`
//! Then:     gtkwave i3_word.vcd

use std::fs::File;
use std::io::BufWriter;

use sal::cells::CircuitBuilder;
use sal::des::{vcd, SimConfig, Simulator, Time, Value};
use sal::link::testbench::{
    attach_consumer, attach_producer, HsConsumer, HsProducer,
};
use sal::link::{build_word_deserializer, build_word_serializer, LinkConfig};
use sal::tech::St012Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LinkConfig::default();
    let mut sim = Simulator::with_config(SimConfig { trace: true, ..SimConfig::default() });
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);

    let rstn = b.input("rstn", 1);
    let din = b.input("din", cfg.flit_width);
    let reqin = b.input("reqin", 1);
    let ack_back = b.input("ack_back", 1);
    let ser = build_word_serializer(&mut b, "wser", &cfg, din, reqin, ack_back, rstn);
    let ackin = b.input("ackin", 1);
    let des = build_word_deserializer(&mut b, "wdes", &cfg, ser.dout, ser.valid, ackin, rstn);
    b.buf_into("ab_loop", ack_back, des.ack_back);
    b.finish();

    sim.stimulus(
        rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
    );
    let words = vec![0xDEAD_BEEF, 0xA5A5_5A5A];
    let (p, _) = HsProducer::new(reqin, din, ser.ackout, cfg.flit_width, words.clone());
    attach_producer(&mut sim, "prod", p, Time::from_ns(1));
    let (c, rx) = HsConsumer::new(des.reqout, des.dout, ackin);
    attach_consumer(&mut sim, "cons", c, Time::ZERO);
    sim.run_until(Time::from_ns(20))?;

    let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
    assert_eq!(got, words, "round trip failed");

    let path = "i3_word.vcd";
    let file = BufWriter::new(File::create(path)?);
    vcd::write_vcd(&sim, file)?;
    println!(
        "transferred {:#010x} and {:#010x} bit-exact over the word-level link",
        words[0], words[1]
    );
    println!(
        "wrote {path} ({} signals, {} events processed) — open it in GTKWave",
        sim.signal_count(),
        sim.events_processed()
    );
    Ok(())
}
