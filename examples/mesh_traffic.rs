//! NoC-level scenario: a 4×4 mesh under several traffic patterns,
//! with channels modelled after the parallel link I1 and the
//! serialized asynchronous link I3 — the system the paper's
//! introduction motivates.
//!
//! Run with: `cargo run --example mesh_traffic --release`

use sal::des::Time;
use sal::link::{LinkConfig, LinkFamily};
use sal::noc::{
    LinkModel, Mesh, Network, NetworkConfig, NodeId, TrafficPattern,
};

fn main() {
    let mesh = Mesh::new(4, 4);
    let patterns = [
        ("uniform", TrafficPattern::UniformRandom),
        ("transpose", TrafficPattern::Transpose),
        ("bit-complement", TrafficPattern::BitComplement),
        ("hotspot(n0,30%)", TrafficPattern::Hotspot { node: NodeId(0), permille: 300 }),
    ];
    // A fast-clocked system, where the serial links saturate below one
    // flit per cycle and the trade-off is visible.
    let lcfg = LinkConfig { clk_period: Time::from_ps(2_500), ..LinkConfig::default() };

    for (family, label) in [
        (LinkFamily::Sync, "I1 parallel (33 wires/channel)"),
        (LinkFamily::PerWord, "I3 serialized (10 wires/channel)"),
    ] {
        let model = LinkModel::from_link(family, &lcfg);
        println!(
            "{label}: {:.2} flits/cycle/channel, {} mesh wires total",
            model.flits_per_cycle,
            mesh.channel_count() * model.wires as usize
        );
        println!(
            "  {:<16} {:>8} {:>10} {:>10} {:>9}",
            "pattern", "offered", "accepted", "latency", "p95"
        );
        for (name, pat) in patterns {
            for &rate in &[0.1, 0.4] {
                let cfg = NetworkConfig {
                    mesh,
                    link: model,
                    input_queue_flits: 8,
                    packet_len_flits: 4,
                    faults: None,
                    routing: sal::noc::RoutingMode::XyStatic,
                    link_kills: Vec::new(),
                };
                let mut net = Network::new(cfg, pat, rate, 7);
                let stats = net.run(8_000, 2_000);
                println!(
                    "  {:<16} {:>8.2} {:>10.3} {:>10.1} {:>9}",
                    name,
                    rate,
                    stats.throughput_fpnc(),
                    stats.avg_latency(),
                    stats.latency_quantile(0.95)
                );
            }
        }
        println!();
    }
    println!(
        "The serialized mesh trades a modest latency/throughput hit at high\n\
         clock rates for a third of the wiring — the paper's Fig 10 argument\n\
         at network scale."
    );
}
