//! Gate-level fabric demo: three five-port switches joined by the
//! paper's serialized asynchronous links — every gate of every switch,
//! interface, serializer and wire buffer simulated event by event.
//!
//! Run with: `cargo run --example gate_level_fabric --release`

use sal::cells::CircuitBuilder;
use sal::des::{Simulator, Time, Value};
use sal::link::testbench::{
    attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
};
use sal::link::{LinkConfig, LinkFamily};
use sal::switch::{build_row_fabric, flit};
use sal::tech::St012Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LinkConfig::default();
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let fabric = build_row_fabric(&mut b, "fab", 3, LinkFamily::PerWord, &cfg);
    let ledger = b.finish();

    for &r in &fabric.rstns {
        sim.stimulus(r, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))]);
    }

    // Every switch sends one flit to each other switch.
    let mut sinks = Vec::new();
    for (i, &(fi, vi, so)) in fabric.local_in.iter().enumerate() {
        let words: Vec<u64> = (0..3)
            .filter(|&d| d != i)
            .map(|d| flit::pack(cfg.flit_width, d as u8, 0, (0x100 * (i + 1) + d) as u64))
            .collect();
        let (src, _) = SyncFlitSource::new(fabric.clk, so, fi, vi, cfg.flit_width, words);
        let src = src.with_rstn(fabric.rstns[0]);
        attach_sync_source(&mut sim, &format!("src{i}"), src, Time::ZERO);
    }
    for (i, &(fo, vo, si)) in fabric.local_out.iter().enumerate() {
        let (snk, rx) = SyncFlitSink::new(fabric.clk, vo, fo, si);
        attach_sync_sink(&mut sim, &format!("snk{i}"), snk, Time::ZERO);
        sinks.push(rx);
    }

    sim.run_until(Time::from_us(3))?;

    println!(
        "gate-level fabric: 3 switches, 4 serialized I3 links, {} signals, {} components",
        sim.signal_count(),
        sim.component_count()
    );
    println!("total cell area: {:.0} um2\n", ledger.total_um2());
    let mut delivered = 0;
    for (i, rx) in sinks.iter().enumerate() {
        for &(t, w) in rx.borrow().iter() {
            let (dx, _, payload) = flit::unpack(cfg.flit_width, w);
            assert_eq!(dx as usize, i, "misrouted flit");
            println!("switch {i} received payload {payload:#05x} at {t}");
            delivered += 1;
        }
    }
    assert_eq!(delivered, 6, "all six flits must arrive");
    println!("\nall {delivered} flits delivered across the gate-level mesh row");
    Ok(())
}
