//! Power sweep: reproduce the paper's Fig 12/13 style experiment over
//! a custom range of buffer counts and clock frequencies.
//!
//! Run with: `cargo run --example link_power_sweep --release`

use sal::des::Time;
use sal::link::measure::{run_spec, MeasureOptions};
use sal::link::testbench::worst_case_pattern;
use sal::link::{LinkConfig, LinkFamily, LinkSpec};

fn main() {
    let words = worst_case_pattern(4, 32);
    for &mhz in &[100u64, 200, 300] {
        println!("switch clock {mhz} MHz (power in uW, 50% usage):");
        println!("  {:>8} {:>8} {:>8} {:>8}", "buffers", "I1", "I2", "I3");
        for buffers in [2u32, 4, 6, 8] {
            let base = LinkConfig {
                clk_period: Time::from_hz(mhz as f64 * 1e6),
                ..LinkConfig::default()
            };
            let mut row = Vec::new();
            for family in LinkFamily::ALL {
                let spec = LinkSpec::builder()
                    .family(family)
                    .buffer_depth(buffers)
                    .build()
                    .expect("valid spec");
                let run = run_spec(&spec, &base, &words, &MeasureOptions::default())
                    .expect("clean run");
                row.push(run.total_power_uw());
            }
            println!(
                "  {:>8} {:>8.0} {:>8.0} {:>8.0}",
                buffers, row[0], row[1], row[2]
            );
        }
        println!();
    }
    println!(
        "Shape check (paper Figs 12-13): the synchronous link grows with both\n\
         buffer count and clock frequency, while the asynchronous links stay\n\
         nearly flat — their cost is concentrated in the clock-domain\n\
         conversion interfaces."
    );
}
