//! Quickstart: build each of the paper's three links, push the
//! worst-case flit pattern through it, and print throughput, power and
//! area side by side.
//!
//! Run with: `cargo run --example quickstart --release`

use sal::link::measure::{run, MeasureOptions};
use sal::link::testbench::worst_case_pattern;
use sal::link::{LinkConfig, LinkKind};

fn main() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, cfg.flit_width);
    println!(
        "Link comparison: {}-bit flits serialized to {} bits, {} buffers, {:.0} um wire, {:.0} MHz switch clock\n",
        cfg.flit_width,
        cfg.slice_width,
        cfg.buffers,
        cfg.length_um,
        cfg.clk_hz() / 1e6
    );
    println!(
        "{:<28} {:>6} {:>12} {:>11} {:>11}",
        "link", "wires", "MFlit/s", "power(uW)", "area(um2)"
    );
    for kind in [LinkKind::I1Sync, LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
        let run = run(kind, &cfg, &words, &MeasureOptions::default()).expect("clean run");
        assert_eq!(run.received_words(), words, "data corrupted on {}", kind.label());
        let name = match kind {
            LinkKind::I1Sync => "I1 synchronous parallel",
            LinkKind::I2PerTransfer => "I2 async, per-transfer ack",
            LinkKind::I3PerWord => "I3 async, per-word ack",
        };
        println!(
            "{:<28} {:>6} {:>12.1} {:>11.0} {:>11.0}",
            name,
            kind.wires(&cfg),
            run.throughput_mflits(),
            run.total_power_uw(),
            run.area_um2()
        );
    }
    println!(
        "\nEvery flit arrived bit-exact over all three links; the serialized\n\
         links used {} wires instead of {} (the paper's 75% reduction).",
        cfg.wires_async(),
        cfg.wires_sync()
    );
}
