//! Quickstart: build each of the paper's three links, push the
//! worst-case flit pattern through it, and print throughput, power and
//! area side by side.
//!
//! Run with: `cargo run --example quickstart --release`

use sal::link::measure::{run_spec, MeasureOptions};
use sal::link::testbench::worst_case_pattern;
use sal::link::{LinkConfig, LinkFamily, LinkSpec};

fn main() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, cfg.flit_width);
    println!(
        "Link comparison: {}-bit flits serialized to {} bits, {} buffers, {:.0} um wire, {:.0} MHz switch clock\n",
        cfg.flit_width,
        cfg.slice_width,
        cfg.buffers,
        cfg.length_um,
        cfg.clk_hz() / 1e6
    );
    println!(
        "{:<28} {:>6} {:>12} {:>11} {:>11}",
        "link", "wires", "MFlit/s", "power(uW)", "area(um2)"
    );
    for family in LinkFamily::ALL {
        // The declarative way in: state the design point, let the
        // validated spec drive generation and measurement.
        let spec = LinkSpec::builder()
            .family(family)
            .word_width(32)
            .serial_ratio(4)
            .buffer_depth(4)
            .build()
            .expect("the paper point is a valid spec");
        let run = run_spec(&spec, &cfg, &words, &MeasureOptions::default()).expect("clean run");
        assert_eq!(run.received_words(), words, "data corrupted on {}", family.label());
        let name = match family {
            LinkFamily::Sync => "I1 synchronous parallel",
            LinkFamily::PerTransfer => "I2 async, per-transfer ack",
            LinkFamily::PerWord => "I3 async, per-word ack",
        };
        println!(
            "{:<28} {:>6} {:>12.1} {:>11.0} {:>11.0}",
            name,
            spec.wires(),
            run.throughput_mflits(),
            run.total_power_uw(),
            run.area_um2()
        );
    }
    println!(
        "\nEvery flit arrived bit-exact over all three links; the serialized\n\
         links used {} wires instead of {} (the paper's 75% reduction).",
        cfg.wires_async(),
        cfg.wires_sync()
    );
}
